//! Grid geometry: coordinates and port directions.

use std::fmt;

/// Position of a node in a two-dimensional grid topology.
///
/// `x` grows eastward, `y` grows northward (matching the turn-model naming
/// in the paper: North = +y, East = +x).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column (eastward).
    pub x: u16,
    /// Row (northward).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Direction of a directed channel in a grid topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Towards +y.
    North,
    /// Towards +x.
    East,
    /// Towards -y.
    South,
    /// Towards -x.
    West,
}

impl Direction {
    /// All four directions, in `[North, East, South, West]` order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The 180-degree opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Unit displacement `(dx, dy)` of this direction.
    pub fn delta(self) -> (i32, i32) {
        match self {
            Direction::North => (0, 1),
            Direction::East => (1, 0),
            Direction::South => (0, -1),
            Direction::West => (-1, 0),
        }
    }

    /// True if this is a "positive" direction (North or East), the
    /// distinction the negative-first turn model relies on.
    pub fn is_positive(self) -> bool {
        matches!(self, Direction::North | Direction::East)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 1).manhattan(Coord::new(1, 5)), 8);
        assert_eq!(Coord::new(2, 2).manhattan(Coord::new(2, 2)), 0);
    }

    #[test]
    fn opposites_are_involutive() {
        for d in Direction::ALL {
            assert_ne!(d, d.opposite());
            assert_eq!(d, d.opposite().opposite());
        }
    }

    #[test]
    fn deltas_sum_to_zero_with_opposite() {
        for d in Direction::ALL {
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!(dx + ox, 0);
            assert_eq!(dy + oy, 0);
        }
    }

    #[test]
    fn positivity_matches_paper_convention() {
        assert!(Direction::North.is_positive());
        assert!(Direction::East.is_positive());
        assert!(!Direction::South.is_positive());
        assert!(!Direction::West.is_positive());
    }

    #[test]
    fn display_is_short() {
        assert_eq!(Direction::North.to_string(), "N");
        assert_eq!(Coord::new(1, 2).to_string(), "(1, 2)");
    }
}
