//! Quickstart: compose a scenario, compute bandwidth-sensitive
//! deadlock-free routes through the unified `RouteAlgorithm` pipeline,
//! compare against dimension-order routing, program the router tables
//! and run a short cycle-accurate simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bsor::{AlgorithmRegistry, Scenario};
use bsor_routing::tables::NodeTables;
use bsor_sim::SimConfig;
use bsor_topology::Topology;
use bsor_workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's substrate: an 8x8 mesh with 2 virtual channels,
    //    carrying the transpose workload — all resolved by name.
    let mesh = Topology::mesh2d(8, 8);
    let workload = workload_by_name(&mesh, "transpose")?;
    println!(
        "workload: {} ({} flows, {:.0} MB/s each)",
        workload.name,
        workload.flows.len(),
        workload.flows.max_demand()
    );
    let scenario = Scenario::builder(mesh, workload.flows)
        .named("quickstart")
        .vcs(2)
        .build()?;

    // 2. Every algorithm is one registry lookup away; routes always come
    //    back validated and deadlock-free (paper Lemma 1) or not at all.
    let algorithms = AlgorithmRegistry::standard();
    let bsor = algorithms.get("bsor-dijkstra").expect("registered");
    let routes = scenario.select_routes(bsor)?;
    println!(
        "BSOR MCL: {:.1} MB/s",
        routes.mcl(scenario.topology(), scenario.flows())
    );

    // 3. Compare with XY dimension-order routing through the same trait.
    let xy = scenario.select_routes(algorithms.get("xy").expect("registered"))?;
    println!(
        "XY MCL: {:.1} MB/s",
        xy.mcl(scenario.topology(), scenario.flows())
    );

    // 4. Program the node-table routers (paper §4.2.1).
    let tables = NodeTables::build(scenario.topology(), &routes);
    println!(
        "node tables: max {} entries/router, {} bits/entry",
        tables.max_entries(),
        tables.entry_bits()
    );

    // 5. Simulate at a moderate load — the experiment pipeline compiles
    //    the tables and drives the cycle-accurate engine.
    let config = SimConfig::new(2)
        .with_warmup(2_000)
        .with_measurement(10_000);
    let report = scenario.experiment(bsor).config(config).rate(1.0).run()?;
    println!(
        "simulated: {:.3} packets/cycle delivered, mean latency {:.1} cycles",
        report.throughput(),
        report.mean_latency().unwrap_or(f64::NAN)
    );
    Ok(())
}
