//! Simulation statistics.
//!
//! Everything in [`SimReport`] is fully deterministic for a fixed seed —
//! flat per-flow and per-link accumulators with no ordering sensitivity —
//! so reports can be compared structurally in regression tests and
//! diffed byte-for-byte once serialized. Wall-clock measurements travel
//! separately in [`RunTiming`].

use std::time::Duration;

/// Per-flow measurement results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets generated during the measurement window.
    pub generated: u64,
    /// Packets ejected during the measurement window (throughput
    /// numerator).
    pub delivered: u64,
    /// Sum of packet latencies (network entry of head → ejection of
    /// tail), cycles, over latency-tracked packets.
    pub latency_sum: u64,
    /// Packets contributing to `latency_sum` (generated during
    /// measurement and fully delivered).
    pub latency_count: u64,
    /// Worst packet latency observed, cycles.
    pub latency_max: u64,
}

impl FlowStats {
    /// Mean packet latency in cycles, `None` when nothing was tracked.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.latency_count as f64)
        }
    }
}

/// Wall-clock measurement of a [`crate::Simulator`] execution, kept out
/// of [`SimReport`] so deterministic results and machine-dependent
/// timings never mix (the sweep harness records both side by side).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunTiming {
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Wall-clock duration of the run loop.
    pub elapsed: Duration,
}

impl RunTiming {
    /// Bundles a cycle count with its wall-clock duration.
    pub fn new(cycles: u64, elapsed: Duration) -> RunTiming {
        RunTiming { cycles, elapsed }
    }

    /// Simulation speed in cycles per wall-clock second (0 for an empty
    /// or unmeasurably fast run).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }
}

/// Whole-run results of a [`crate::Simulator`] execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Cycles actually simulated (shorter than configured if the watchdog
    /// fired).
    pub cycles: u64,
    /// Measurement-window length used for rates.
    pub measured_cycles: u64,
    /// Packets generated during measurement, across all flows.
    pub generated_packets: u64,
    /// Packets delivered (counted against measurement injections).
    pub delivered_packets: u64,
    /// Flits delivered in the measurement window.
    pub delivered_flits: u64,
    /// Per-flow breakdown.
    pub per_flow: Vec<FlowStats>,
    /// Flits carried per physical channel over the whole run (a proxy for
    /// observed channel load).
    pub link_flits: Vec<u64>,
    /// True if the progress watchdog aborted the run (routing deadlock or
    /// total starvation).
    pub deadlocked: bool,
}

impl SimReport {
    /// Delivered throughput in packets/cycle over the measurement window.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.measured_cycles as f64
        }
    }

    /// Offered load actually generated, packets/cycle.
    pub fn offered(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.generated_packets as f64 / self.measured_cycles as f64
        }
    }

    /// Mean packet latency in cycles over all latency-tracked packets.
    pub fn mean_latency(&self) -> Option<f64> {
        let tracked: u64 = self.per_flow.iter().map(|f| f.latency_count).sum();
        if tracked == 0 {
            return None;
        }
        let sum: u64 = self.per_flow.iter().map(|f| f.latency_sum).sum();
        Some(sum as f64 / tracked as f64)
    }

    /// Worst packet latency across flows.
    pub fn max_latency(&self) -> u64 {
        self.per_flow
            .iter()
            .map(|f| f.latency_max)
            .max()
            .unwrap_or(0)
    }

    /// The busiest channel's flit count.
    pub fn max_link_flits(&self) -> u64 {
        self.link_flits.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_latency() {
        let report = SimReport {
            cycles: 1_000,
            measured_cycles: 500,
            generated_packets: 100,
            delivered_packets: 80,
            delivered_flits: 640,
            per_flow: vec![
                FlowStats {
                    generated: 60,
                    delivered: 50,
                    latency_sum: 500,
                    latency_count: 50,
                    latency_max: 30,
                },
                FlowStats {
                    generated: 40,
                    delivered: 30,
                    latency_sum: 600,
                    latency_count: 30,
                    latency_max: 45,
                },
            ],
            link_flits: vec![3, 9, 1],
            deadlocked: false,
        };
        assert!((report.throughput() - 0.16).abs() < 1e-12);
        assert!((report.offered() - 0.2).abs() < 1e-12);
        assert!((report.mean_latency().unwrap() - 1100.0 / 80.0).abs() < 1e-12);
        assert_eq!(report.max_latency(), 45);
        assert_eq!(report.max_link_flits(), 9);
        assert_eq!(report.per_flow[0].mean_latency(), Some(10.0));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = SimReport::default();
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.mean_latency(), None);
        assert_eq!(report.max_latency(), 0);
        assert_eq!(report.max_link_flits(), 0);
    }
}
