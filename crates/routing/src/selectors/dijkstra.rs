//! The BSOR Dijkstra weighted-shortest-path selector (paper §3.6).
//!
//! Flows are routed one at a time over the flow network `GA`. Edge
//! weights are the reciprocal residual-capacity metric of
//! [`bsor_flow::WeightParams`]; after each flow is routed, residual
//! capacities are updated, spreading load across channels and VCs. Routes
//! conform to the acyclic CDG by construction, so the result is
//! deadlock-free.

use crate::route::{Route, RouteHop, RouteSet, VcMask};
use crate::selector::{FlowOrder, SelectError};
use bsor_flow::{Flow, FlowNetwork, FlowSet, LoadState, WeightParams};
use bsor_netgraph::{algo, NodeId as GraphNode};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the Dijkstra route selector.
#[derive(Clone, Copy, Debug)]
pub struct DijkstraSelector {
    /// Weight-function parameters; `None` derives them from the topology
    /// (`M` = max link bandwidth, as the paper suggests).
    pub weights: Option<WeightParams>,
    /// Flow routing order.
    pub order: FlowOrder,
    /// Extra rip-up-and-reroute passes after the initial sequential
    /// routing: each pass removes one flow at a time and re-routes it
    /// against the remaining load. 0 reproduces the paper's single
    /// sequential pass.
    pub refinement_passes: usize,
    /// Hop budget: selections containing a route longer than this are
    /// rejected with [`SelectError::HopBudgetExceeded`]. `None` (the
    /// default) leaves route length unconstrained.
    pub max_hops: Option<usize>,
}

impl Default for DijkstraSelector {
    fn default() -> Self {
        DijkstraSelector {
            weights: None,
            order: FlowOrder::DemandDescending,
            refinement_passes: 0,
            max_hops: None,
        }
    }
}

impl DijkstraSelector {
    /// Selector with default parameters.
    pub fn new() -> Self {
        DijkstraSelector::default()
    }

    /// Overrides the weight parameters (e.g. to sweep the `M` constant).
    #[must_use]
    pub fn with_weights(mut self, weights: WeightParams) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Overrides the flow order.
    #[must_use]
    pub fn with_order(mut self, order: FlowOrder) -> Self {
        self.order = order;
        self
    }

    /// Enables rip-up-and-reroute refinement passes.
    #[must_use]
    pub fn with_refinement(mut self, passes: usize) -> Self {
        self.refinement_passes = passes;
        self
    }

    /// Caps route length: any selection containing a route longer than
    /// `max_hops` is refused with [`SelectError::HopBudgetExceeded`].
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = Some(max_hops);
        self
    }

    /// Chooses one deadlock-free route per flow.
    ///
    /// **Deprecation note:** this flow-network signature is the legacy
    /// entry point. New code should run the selector through the unified
    /// `RouteAlgorithm` trait (`bsor_sim::RouteAlgorithm`, which
    /// `DijkstraSelector` implements against a scenario's CDG) or the
    /// exploring `bsor::BsorAlgorithm`; this method remains as the
    /// selection kernel those impls delegate to.
    ///
    /// # Errors
    ///
    /// [`SelectError::Unroutable`] if the acyclic CDG disconnects some
    /// flow's source from its sink.
    pub fn select(&self, net: &FlowNetwork<'_>, flows: &FlowSet) -> Result<RouteSet, SelectError> {
        let paths = self.select_paths(net, flows)?;
        let routes = RouteSet::from_routes(
            flows
                .iter()
                .zip(&paths)
                .map(|(flow, vertices)| Route {
                    flow: flow.id,
                    hops: vertices
                        .iter()
                        .map(|&v| {
                            let cv = net.acyclic().cdg().vertex(v);
                            RouteHop {
                                link: cv.link,
                                vcs: VcMask::single(cv.vc.0),
                            }
                        })
                        .collect(),
                })
                .collect(),
        );
        crate::selector::check_hop_budget(&routes, self.max_hops)?;
        Ok(routes)
    }

    /// Like [`DijkstraSelector::select`] but returns raw CDG vertex
    /// paths, indexed by flow (used by the MILP selector to seed its
    /// candidate pool and warm-start).
    ///
    /// # Errors
    ///
    /// [`SelectError::Unroutable`] if the acyclic CDG disconnects some
    /// flow's source from its sink.
    pub fn select_paths(
        &self,
        net: &FlowNetwork<'_>,
        flows: &FlowSet,
    ) -> Result<Vec<Vec<GraphNode>>, SelectError> {
        let params = self
            .weights
            .unwrap_or_else(|| WeightParams::from_topology(net.topology()));
        let mut order: Vec<&Flow> = flows.iter().collect();
        match self.order {
            FlowOrder::AsGiven => {}
            FlowOrder::DemandDescending => {
                order.sort_by(|a, b| {
                    b.demand
                        .partial_cmp(&a.demand)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.id.cmp(&b.id))
                });
            }
            FlowOrder::Random { seed } => {
                order.shuffle(&mut StdRng::seed_from_u64(seed));
            }
        }
        let mut load = LoadState::new(net);
        let mut paths: Vec<Option<Vec<GraphNode>>> = vec![None; flows.len()];
        for flow in &order {
            let vertices = route_one(net, &load, &params, flow)
                .ok_or(SelectError::Unroutable { flow: flow.id })?;
            load.add_path(net, &vertices, flow.demand);
            paths[flow.id.index()] = Some(vertices);
        }
        // Rip-up and re-route: with the global picture known, each flow
        // gets a chance to move off the hot channels. A re-route is kept
        // only when it does not increase the global MCL, so refinement is
        // monotone non-increasing in MCL.
        for _ in 0..self.refinement_passes {
            for flow in &order {
                let before = load.mcl();
                let old = paths[flow.id.index()].take().expect("routed above");
                load.remove_path(net, &old, flow.demand);
                let new = route_one(net, &load, &params, flow)
                    .expect("a previously routable flow stays routable");
                load.add_path(net, &new, flow.demand);
                if load.mcl() > before + 1e-9 {
                    load.remove_path(net, &new, flow.demand);
                    load.add_path(net, &old, flow.demand);
                    paths[flow.id.index()] = Some(old);
                } else {
                    paths[flow.id.index()] = Some(new);
                }
            }
        }
        Ok(paths
            .into_iter()
            .map(|p| p.expect("every flow was routed"))
            .collect())
    }
}

/// Runs one weighted-shortest-path query for `flow`, returning the CDG
/// vertex sequence of the best route, or `None` if no sink is reachable.
fn route_one(
    net: &FlowNetwork<'_>,
    load: &LoadState,
    params: &WeightParams,
    flow: &Flow,
) -> Option<Vec<GraphNode>> {
    let graph = net.acyclic().graph();
    // The implicit edge from the source terminal to each starting vertex
    // carries that vertex's weight.
    let sources: Vec<(GraphNode, f64)> = net
        .sources(flow)
        .into_iter()
        .map(|v| (v, params.weight(net, load, v, flow.demand)))
        .collect();
    if sources.is_empty() {
        return None;
    }
    // Every other edge carries the weight of the vertex it enters; edges
    // into the sink terminal carry 0 (paper §3.6), so the path cost is
    // exactly the sum of the vertices' weights.
    let sp = algo::dijkstra(graph, &sources, |e| {
        let (_, head) = graph.endpoints(e).expect("live edge");
        params.weight(net, load, head, flow.demand)
    });
    let best_sink = net
        .sinks(flow)
        .into_iter()
        .filter(|v| sp.dist[v.index()].is_finite())
        .min_by(|a, b| {
            sp.dist[a.index()]
                .partial_cmp(&sp.dist[b.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
    let edge_path = sp
        .path_to(graph, best_sink)
        .expect("finite dist implies a path");
    let mut vertices = Vec::with_capacity(edge_path.len() + 1);
    match edge_path.first() {
        Some(&e) => {
            let (s, _) = graph.endpoints(e).expect("live edge");
            vertices.push(s);
        }
        None => vertices.push(best_sink),
    }
    for &e in &edge_path {
        let (_, d) = graph.endpoints(e).expect("live edge");
        vertices.push(d);
    }
    Some(vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock;
    use bsor_cdg::{AcyclicCdg, TurnModel};
    use bsor_topology::Topology;

    fn transpose_flows(topo: &Topology, demand: f64) -> FlowSet {
        let n = topo.width();
        let mut fs = FlowSet::new();
        for y in 0..n {
            for x in 0..n {
                if x != y {
                    let s = topo.node_at(x, y).expect("in range");
                    let d = topo.node_at(y, x).expect("in range");
                    fs.push(s, d, demand);
                }
            }
        }
        fs
    }

    #[test]
    fn routes_are_valid_and_deadlock_free() {
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        let routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        routes.validate(&topo, &flows, 2).expect("valid");
        assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn beats_xy_on_transpose_across_cdg_exploration() {
        // The headline claim (paper Tables 6.2/6.3): exploring the valid
        // turn-model CDGs and keeping the best route set lowers MCL well
        // below dimension-order routing on transpose. With 25 MB/s flows
        // the paper's numbers are XY = 175 and BSOR-Dijkstra = 75.
        let topo = Topology::mesh2d(8, 8);
        let flows = transpose_flows(&topo, 25.0);
        let xy = crate::baselines::Baseline::XY
            .select(&topo, &flows, 2)
            .expect("xy");
        let xy_mcl = xy.mcl(&topo, &flows);
        assert_eq!(xy_mcl, 175.0);
        let mut best = f64::INFINITY;
        for model in TurnModel::valid_models(&topo).expect("mesh is a grid") {
            let acyclic = AcyclicCdg::turn_model(&topo, 2, &model).expect("valid");
            let net = FlowNetwork::new(&topo, &acyclic);
            let routes = DijkstraSelector::new()
                .select(&net, &flows)
                .expect("routable");
            routes.validate(&topo, &flows, 2).expect("valid");
            best = best.min(routes.mcl(&topo, &flows));
        }
        assert_eq!(
            best, 75.0,
            "best turn-model CDG should reach the paper's 75 MB/s"
        );
    }

    #[test]
    fn static_vc_masks_are_singletons() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 4, &TurnModel::north_last()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 10.0);
        let routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        for r in routes.iter() {
            for h in &r.hops {
                assert_eq!(h.vcs.count(), 1, "static allocation pins one VC per hop");
            }
        }
    }

    #[test]
    fn order_changes_results_but_not_feasibility() {
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        for order in [
            FlowOrder::AsGiven,
            FlowOrder::DemandDescending,
            FlowOrder::Random { seed: 1 },
            FlowOrder::Random { seed: 2 },
        ] {
            let routes = DijkstraSelector::new()
                .with_order(order)
                .select(&net, &flows)
                .expect("routable");
            routes.validate(&topo, &flows, 2).expect("valid");
        }
    }

    #[test]
    fn larger_m_biases_towards_short_paths() {
        // Paper §3.6: "Increasing M gives more weight to minimizing the
        // number of hops in each path."
        let topo = Topology::mesh2d(6, 6);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 100.0);
        let small_m = DijkstraSelector::new()
            .with_weights(WeightParams {
                m_const: 10.0,
                vc_bias: 0.0,
            })
            .select(&net, &flows)
            .expect("routable");
        let large_m = DijkstraSelector::new()
            .with_weights(WeightParams {
                m_const: 1e7,
                vc_bias: 0.0,
            })
            .select(&net, &flows)
            .expect("routable");
        assert!(
            large_m.mean_hops() <= small_m.mean_hops(),
            "large M ({}) should not produce longer routes than small M ({})",
            large_m.mean_hops(),
            small_m.mean_hops()
        );
    }

    #[test]
    fn hop_budget_is_enforced_and_typed() {
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        // A 4x4 transpose needs up to 6 hops; a 2-hop budget must refuse.
        let err = DijkstraSelector::new()
            .with_max_hops(2)
            .select(&net, &flows)
            .expect_err("2 hops cannot cover transpose");
        assert!(matches!(
            err,
            crate::selector::SelectError::HopBudgetExceeded { max_hops: 2, .. }
        ));
        // A generous budget changes nothing.
        let capped = DijkstraSelector::new()
            .with_max_hops(64)
            .select(&net, &flows)
            .expect("routable");
        let free = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        assert_eq!(capped.mcl(&topo, &flows), free.mcl(&topo, &flows));
    }

    #[test]
    fn single_hop_flow_routes_directly() {
        let topo = Topology::mesh2d(2, 2);
        let acyclic = AcyclicCdg::turn_model(&topo, 1, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let mut flows = FlowSet::new();
        flows.push(
            topo.node_at(0, 0).unwrap(),
            topo.node_at(1, 0).unwrap(),
            5.0,
        );
        let routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        assert_eq!(routes.route(bsor_flow::FlowId(0)).len(), 1);
    }
}
