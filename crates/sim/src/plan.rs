//! Planning vs. evaluating: the cached [`RoutePlan`] API.
//!
//! BSOR's cost is front-loaded. Building the CDG and solving for
//! minimum maximum channel load (the MILP of paper §3.5, or the
//! Dijkstra heuristic of §3.6) is expensive, while replaying the
//! resulting routes under different rates, bursts or phases is cheap.
//! This module makes that split first-class:
//!
//! * a [`Planner`] turns `(topology, workload, algorithm, vcs)` — i.e. a
//!   [`Scenario`] plus a [`RouteAlgorithm`] — into an immutable,
//!   content-addressed [`RoutePlan`] artifact: the scenario's CDG,
//!   validated routes, a checkable Lemma-1
//!   [`DeadlockCertificate`], compiled routing tables ([`AnyTables`],
//!   dense or interval-compressed), the static
//!   per-channel loads and the predicted MCL;
//! * an [`Evaluator`] judges a plan at an [`EvalPoint`] and returns a
//!   common typed [`Evaluation`] report. Two backends ship:
//!   [`StaticMclEvaluator`] (analytical channel-load/MCL estimate
//!   straight from the plan, no simulation) and [`SimEvaluator`] (the
//!   cycle-accurate arena engine);
//! * a [`PlanCache`] keyed by a canonical hash of the plan inputs lets
//!   every rate/burst/saturation axis reuse one plan per case instead of
//!   re-solving the same selection per grid point.
//!
//! ```
//! use bsor_routing::Baseline;
//! use bsor_sim::{EvalPoint, Evaluator, Planner, Scenario, SimConfig, SimEvaluator,
//!                StaticMclEvaluator};
//! use bsor_flow::FlowSet;
//! use bsor_topology::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = Topology::mesh2d(4, 4);
//! let mut flows = FlowSet::new();
//! flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 3).unwrap(), 25.0);
//! let scenario = Scenario::builder(mesh, flows).vcs(2).build()?;
//!
//! // Plan once: routes + Lemma-1 certificate + compiled tables + MCL.
//! let planner = Planner::new();
//! let plan = planner.plan(&scenario, &Baseline::XY)?;
//! assert!(plan.certificate().verify(plan.routes()));
//! assert_eq!(plan.predicted_mcl(), 25.0);
//!
//! // Evaluate many times: analytically, or in the cycle-accurate engine.
//! let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
//! let analytical = StaticMclEvaluator::new()
//!     .evaluate(&plan, &EvalPoint::new(0.05, config.clone()))?;
//! let simulated = SimEvaluator::new()
//!     .evaluate(&plan, &EvalPoint::new(0.05, config))?;
//! assert_eq!(analytical.predicted_mcl, simulated.predicted_mcl);
//! assert!(simulated.delivered > 0);
//! # Ok(())
//! # }
//! ```

use crate::config::{SimConfig, SimError};
use crate::scenario::{AlgorithmError, RouteAlgorithm, Scenario};
use crate::stats::{RunTiming, SimReport};
use crate::traffic::{BurstyOnOff, MarkovVariation, PhaseSchedule, TrafficSpec};
use crate::Simulator;
use bsor_cdg::AcyclicCdg;
use bsor_flow::FlowSet;
use bsor_routing::deadlock::{self, DeadlockCertificate};
use bsor_routing::tables::RouteTables;
use bsor_routing::{AnyTables, RouteError, RouteSet};
use bsor_topology::Topology;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// The canonical encoding of everything a plan's content depends on:
/// topology family, dimensions, links (endpoints and capacities), the
/// local-bandwidth factor, the flow set (endpoints and demands), the VC
/// count, the CDG's name *and dependence-edge structure*, and the
/// algorithm's [`RouteAlgorithm::cache_key`] (which folds in seeds,
/// selector budgets and exploration strategies — not just the display
/// name).
///
/// Two scenarios with equal keys produce identical plans (every
/// algorithm in the workspace is deterministic over these inputs), so
/// the key doubles as the [`PlanCache`] lookup key — exact, not
/// hash-truncated — while its 64-bit FNV-1a digest is the displayed
/// [`PlanId`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    bytes: Vec<u8>,
}

impl PlanKey {
    /// Encodes the plan inputs of `scenario` under `algorithm` (an
    /// algorithm *cache key*, from [`RouteAlgorithm::cache_key`] — the
    /// bare display name under-identifies configured algorithms).
    pub fn new(scenario: &Scenario, algorithm: &str) -> PlanKey {
        let mut bytes = Vec::new();
        let push_u64 = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        let push_f64 =
            |bytes: &mut Vec<u8>, v: f64| bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        let push_str = |bytes: &mut Vec<u8>, s: &str| {
            push_u64(bytes, s.len() as u64);
            bytes.extend_from_slice(s.as_bytes());
        };
        let topo = scenario.topology();
        bytes.push(topo.kind() as u8);
        bytes.extend_from_slice(&topo.width().to_le_bytes());
        bytes.extend_from_slice(&topo.height().to_le_bytes());
        push_u64(&mut bytes, topo.num_nodes() as u64);
        push_u64(&mut bytes, topo.num_links() as u64);
        for l in topo.link_ids() {
            let link = topo.link(l);
            push_u64(&mut bytes, u64::from(link.src.0));
            push_u64(&mut bytes, u64::from(link.dst.0));
            push_f64(&mut bytes, link.capacity);
        }
        push_f64(&mut bytes, topo.local_bandwidth_factor());
        push_u64(&mut bytes, scenario.flows().len() as u64);
        for f in scenario.flows().iter() {
            push_u64(&mut bytes, u64::from(f.src.0));
            push_u64(&mut bytes, u64::from(f.dst.0));
            push_f64(&mut bytes, f.demand);
        }
        bytes.push(scenario.vcs());
        // The CDG by *content*, not just name: CDG-conforming selectors
        // route inside its dependence edges, and `ScenarioBuilder::cdg`
        // accepts arbitrary same-named derivations. Vertices are laid
        // out canonically per (topology, vcs) — both encoded above — so
        // the edge list pins the structure.
        let cdg = scenario.cdg();
        push_str(&mut bytes, cdg.name());
        let graph = cdg.graph();
        push_u64(&mut bytes, graph.node_count() as u64);
        push_u64(&mut bytes, graph.edge_count() as u64);
        for (_, src, dst, _) in graph.edges() {
            push_u64(&mut bytes, src.index() as u64);
            push_u64(&mut bytes, dst.index() as u64);
        }
        push_str(&mut bytes, algorithm);
        PlanKey { bytes }
    }

    /// The key's 64-bit FNV-1a digest.
    pub fn id(&self) -> PlanId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        PlanId(h)
    }
}

/// Content address of a [`RoutePlan`] (FNV-1a digest of its
/// [`PlanKey`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanId(pub u64);

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An immutable, content-addressed routing plan: everything the
/// expensive planning phase produces, ready to be evaluated any number
/// of times.
///
/// A plan bundles the scenario it was planned on (topology, flows, VCs,
/// CDG) with the validated [`RouteSet`], a checkable Lemma-1
/// [`DeadlockCertificate`], the compiled routing tables the router
/// hardware would be programmed with, the static per-channel bandwidth
/// loads and their maximum (the paper's MCL metric, what the MILP
/// objective minimizes).
///
/// Plans compare structurally ([`PartialEq`]): a cache hit is required
/// to be indistinguishable from a fresh plan of the same inputs.
///
/// ```
/// use bsor_routing::Baseline;
/// use bsor_sim::{Planner, Scenario};
/// use bsor_flow::FlowSet;
/// use bsor_topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mesh = Topology::mesh2d(4, 4);
/// let mut flows = FlowSet::new();
/// flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 0).unwrap(), 50.0);
/// let scenario = Scenario::builder(mesh, flows).vcs(2).build()?;
/// let plan = Planner::new().plan(&scenario, &Baseline::XY)?;
/// assert_eq!(plan.algorithm(), "XY");
/// assert_eq!(plan.predicted_mcl(), 50.0);
/// assert_eq!(plan.link_demands().len(), plan.topology().num_links());
/// assert!(plan.certificate().verify(plan.routes()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RoutePlan {
    id: PlanId,
    algorithm: String,
    scenario: Scenario,
    routes: RouteSet,
    certificate: DeadlockCertificate,
    tables: AnyTables,
    link_demands: Vec<f64>,
    predicted_mcl: f64,
}

impl RoutePlan {
    /// The content address: the FNV-1a digest of the full [`PlanKey`]
    /// encoding — topology (links and capacities), flows, VCs, the
    /// CDG's name *and* dependence-edge structure, and the algorithm's
    /// [`RouteAlgorithm::cache_key`] (seeds and budgets included, not
    /// just the display name).
    pub fn id(&self) -> PlanId {
        self.id
    }

    /// Display name of the algorithm that produced the routes.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The scenario the plan was computed for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        self.scenario.topology()
    }

    /// The application's flows.
    pub fn flows(&self) -> &FlowSet {
        self.scenario.flows()
    }

    /// Virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.scenario.vcs()
    }

    /// The acyclic CDG the scenario carried into planning.
    pub fn cdg(&self) -> &AcyclicCdg {
        self.scenario.cdg()
    }

    /// The validated, deadlock-free routes (one per flow).
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// The Lemma-1 witness: a topological order of the induced channel
    /// dependence graph, re-checkable against the routes.
    pub fn certificate(&self) -> &DeadlockCertificate {
        &self.certificate
    }

    /// The compiled routing tables (paper §4.2.1) the routes program —
    /// dense [`bsor_routing::NodeTables`] by default, or the interval-
    /// compressed representation under [`Planner::with_compact_tables`].
    pub fn tables(&self) -> &AnyTables {
        &self.tables
    }

    /// Measured heap footprint of the compiled tables in bytes (the
    /// representation actually stored, so compact plans report their
    /// compressed size). This is the `table_bytes` figure surfaced by
    /// sweeps and `bsor-serve`.
    pub fn table_bytes(&self) -> usize {
        self.tables.table_bytes()
    }

    /// Static bandwidth load per channel in MB/s: each flow's demand
    /// summed over the channels its route crosses.
    pub fn link_demands(&self) -> &[f64] {
        &self.link_demands
    }

    /// The maximum of [`RoutePlan::link_demands`] — the paper's MCL
    /// metric in MB/s, equal to the LP objective when the MILP selector
    /// produced the routes.
    pub fn predicted_mcl(&self) -> f64 {
        self.predicted_mcl
    }

    /// A deliberately rough estimate of the plan's heap footprint, used
    /// by the [`PlanCache`] byte budget. It counts the dominant
    /// variable-size pieces (route hops, per-channel demand and
    /// certificate ranks, flows) at fixed per-item costs plus a flat
    /// overhead — stable across platforms, not exact — except for the
    /// routing tables, which are **measured** from the representation
    /// the plan actually holds, so a compact plan's LRU charge matches
    /// its compressed footprint instead of the dense estimate.
    pub fn approx_bytes(&self) -> usize {
        let topo = self.topology();
        let hop_bytes: usize = self.routes.iter().map(|r| 48 + r.len() * 16).sum();
        let channel_slots = topo.num_links() * usize::from(self.vcs());
        hop_bytes
            + self.link_demands.len() * 8
            + channel_slots * 8 // certificate ranks
            + self.tables.table_bytes() // measured, dense or compact
            + self.flows().len() * 32
            + self.cdg().graph().edge_count() * 16
            + 1024
    }
}

impl PartialEq for RoutePlan {
    /// Structural equality over everything planning computed (the
    /// embedded scenario is covered by the content address, which
    /// encodes its topology with link capacities, flows, VCs, the
    /// CDG's name and dependence-edge structure, and the algorithm's
    /// full cache key).
    fn eq(&self, other: &RoutePlan) -> bool {
        self.id == other.id
            && self.algorithm == other.algorithm
            && self.routes == other.routes
            && self.certificate == other.certificate
            && self.tables == other.tables
            && self.link_demands == other.link_demands
            && self.predicted_mcl == other.predicted_mcl
    }
}

/// Why a [`Planner`] could not produce a [`RoutePlan`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The routing algorithm failed.
    Algorithm(AlgorithmError),
    /// The algorithm produced malformed routes (wrong endpoints,
    /// non-adjacent hops, …).
    InvalidRoutes(RouteError),
    /// The routes' induced channel dependence graph is cyclic — running
    /// them could deadlock (paper Lemma 1), so no plan is produced.
    Deadlock {
        /// The offending algorithm's display name.
        algorithm: String,
        /// Length of the dependence cycle found.
        cycle_len: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Algorithm(e) => write!(f, "{e}"),
            PlanError::InvalidRoutes(e) => write!(f, "invalid routes: {e}"),
            PlanError::Deadlock {
                algorithm,
                cycle_len,
            } => write!(
                f,
                "{algorithm} produced routes with a {cycle_len}-long channel dependence \
                 cycle (not deadlock-free, refusing to plan)"
            ),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Algorithm(e) => Some(e),
            PlanError::InvalidRoutes(e) => Some(e),
            PlanError::Deadlock { .. } => None,
        }
    }
}

impl From<AlgorithmError> for PlanError {
    fn from(e: AlgorithmError) -> Self {
        PlanError::Algorithm(e)
    }
}

impl From<RouteError> for PlanError {
    fn from(e: RouteError) -> Self {
        PlanError::InvalidRoutes(e)
    }
}

impl From<PlanError> for crate::scenario::ExperimentError {
    /// Maps planning failures onto the legacy experiment errors (the
    /// shimmed [`crate::Experiment`] pipeline reports identically to the
    /// pre-plan one).
    fn from(e: PlanError) -> Self {
        use crate::scenario::ExperimentError;
        match e {
            PlanError::Algorithm(e) => ExperimentError::Algorithm(e),
            PlanError::InvalidRoutes(e) => ExperimentError::InvalidRoutes(e),
            PlanError::Deadlock {
                algorithm,
                cycle_len,
            } => ExperimentError::CyclicCdg {
                algorithm,
                cycle_len,
            },
        }
    }
}

/// Sizing knobs for a [`PlanCache`].
///
/// The defaults are an unbounded cache over
/// [`PlanCacheConfig::DEFAULT_SHARDS`] shards — the PR-5 behaviour,
/// minus the lock contention. Capacities are totals across shards;
/// enforcement is per shard (each shard gets an equal slice), so a
/// bounded cache's occupancy can transiently sit below the total while
/// one hot shard evicts. When `max_plans` is smaller than the shard
/// count the cache collapses to `max_plans` shards, so tiny caches
/// (capacity 1) behave as a strict global LRU.
#[derive(Clone, Copy, Debug)]
pub struct PlanCacheConfig {
    shards: usize,
    max_plans: Option<usize>,
    max_bytes: Option<usize>,
}

impl PlanCacheConfig {
    /// Shard count used when none is requested.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Unbounded cache over the default shard count.
    pub fn new() -> PlanCacheConfig {
        PlanCacheConfig {
            shards: Self::DEFAULT_SHARDS,
            max_plans: None,
            max_bytes: None,
        }
    }

    /// Number of independently locked shards (clamped to ≥ 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> PlanCacheConfig {
        self.shards = shards.max(1);
        self
    }

    /// Caps the total number of cached plans; least-recently-used
    /// entries are evicted past the cap. `0` means unbounded.
    #[must_use]
    pub fn max_plans(mut self, max_plans: usize) -> PlanCacheConfig {
        self.max_plans = (max_plans > 0).then_some(max_plans);
        self
    }

    /// Caps the total [`RoutePlan::approx_bytes`] held; least-recently-
    /// used entries are evicted past the cap (a lone oversized plan is
    /// retained rather than thrashed). `0` means unbounded.
    #[must_use]
    pub fn max_bytes(mut self, max_bytes: usize) -> PlanCacheConfig {
        self.max_bytes = (max_bytes > 0).then_some(max_bytes);
        self
    }
}

impl Default for PlanCacheConfig {
    fn default() -> PlanCacheConfig {
        PlanCacheConfig::new()
    }
}

/// A point-in-time snapshot of a [`PlanCache`]'s counters
/// ([`PlanCache::stats`]).
///
/// `hits`/`misses`/`dedup_waits` partition lookups: a *hit* was served
/// from the store, a *miss* started a solve, a *dedup wait* blocked on
/// another request's in-flight solve for the same key instead of
/// re-solving. `solve_ns_*` are wall-clock and therefore
/// non-deterministic; everything else is a pure function of the request
/// history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that found nothing and became the solving leader.
    pub misses: u64,
    /// Lookups that blocked on an identical in-flight solve.
    pub dedup_waits: u64,
    /// Plans stored (leader completions plus direct
    /// [`PlanCache::insert`]s).
    pub inserts: u64,
    /// Entries evicted by the LRU capacity/byte budget.
    pub evicted_lru: u64,
    /// Entries evicted by [`PlanCache::invalidate`] (demand on an
    /// affected link, or a certificate that no longer verifies).
    pub evicted_invalidated: u64,
    /// Surviving plans whose [`DeadlockCertificate`] was re-verified by
    /// an invalidation delta.
    pub recertified: u64,
    /// Solves currently in flight behind this cache.
    pub in_flight: u64,
    /// Solves performed through the cache's single-flight path.
    pub solves: u64,
    /// Total wall-clock nanoseconds spent in those solves.
    pub solve_ns_total: u64,
    /// The slowest single solve, nanoseconds.
    pub solve_ns_max: u64,
    /// Plans currently cached.
    pub plans: u64,
    /// Approximate bytes currently cached ([`RoutePlan::approx_bytes`]).
    pub bytes: u64,
    /// Measured routing-table bytes across the cached plans
    /// ([`RoutePlan::table_bytes`] — the representation each plan
    /// actually holds, compact or dense).
    pub table_bytes: u64,
}

/// What a [`PlanCache::invalidate`] delta did
/// ([`InvalidateOutcome::examined`] plans touched the affected links;
/// the rest of the cache was never visited).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct InvalidateOutcome {
    /// Cached plans whose topology contains an affected link.
    pub examined: u64,
    /// Of those, evicted: the plan routed demand over an affected link,
    /// or its certificate failed re-verification.
    pub evicted: u64,
    /// Of those, kept after their [`DeadlockCertificate`] re-verified.
    pub recertified: u64,
}

#[derive(Debug)]
struct CacheEntry {
    plan: Arc<RoutePlan>,
    last_used: u64,
    bytes: usize,
    /// The `(src, dst)` endpoint pairs this entry is indexed under in
    /// [`Shard::link_index`] (every topology link), so removal can
    /// clean the index without a scan.
    indexed: Vec<(u32, u32)>,
}

/// A single-flight slot: the leader publishes the solve's result here
/// and wakes every follower blocked in [`Flight::wait`].
#[derive(Debug, Default)]
struct Flight {
    result: Mutex<Option<Result<Arc<RoutePlan>, PlanError>>>,
    done: Condvar,
}

impl Flight {
    fn wait(&self) -> Result<Arc<RoutePlan>, PlanError> {
        let mut slot = self.result.lock().expect("flight poisoned");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("flight poisoned");
        }
        slot.as_ref().expect("flight published").clone()
    }

    fn publish(&self, result: Result<Arc<RoutePlan>, PlanError>) {
        *self.result.lock().expect("flight poisoned") = Some(result);
        self.done.notify_all();
    }
}

#[derive(Debug, Default)]
struct Shard {
    /// Keys are shared with [`Shard::link_index`] via `Arc`: a
    /// [`PlanKey`] is O(links + flows) bytes, so cloning it per indexed
    /// link would make one insert quadratic in topology size (at 64x64
    /// that is gigabytes of key copies per plan — the scale sweep's
    /// first finding).
    entries: HashMap<Arc<PlanKey>, CacheEntry>,
    flights: HashMap<PlanKey, Arc<Flight>>,
    link_index: HashMap<(u32, u32), Vec<Arc<PlanKey>>>,
    tick: u64,
    bytes: usize,
}

impl Shard {
    fn touch(&mut self, key: &PlanKey) -> Option<Arc<RoutePlan>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            e.plan.clone()
        })
    }

    fn remove(&mut self, key: &PlanKey) -> Option<CacheEntry> {
        // remove_entry recovers the stored Arc, so the index scrub
        // below compares pointers, not O(key-size) byte strings.
        let (stored, entry) = self.entries.remove_entry(key)?;
        self.bytes -= entry.bytes;
        for pair in &entry.indexed {
            if let Some(keys) = self.link_index.get_mut(pair) {
                keys.retain(|k| !Arc::ptr_eq(k, &stored));
                if keys.is_empty() {
                    self.link_index.remove(pair);
                }
            }
        }
        Some(entry)
    }

    fn lru_key(&self) -> Option<Arc<PlanKey>> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
    }
}

/// How a [`PlanCache::join`] resolved a lookup.
enum Joined {
    /// Served from the store.
    Hit(Arc<RoutePlan>),
    /// An identical solve is in flight; block on it.
    Follower(Arc<Flight>),
    /// Nothing cached or in flight: the caller must solve and
    /// [`PlanCache::complete`] this flight.
    Leader(Arc<Flight>),
}

/// A thread-safe plan store keyed by the canonical [`PlanKey`], sharded
/// by [`PlanId`] so concurrent tenants contend per shard, not globally.
///
/// Share one cache (wrapped in an [`Arc`]) across every axis of a sweep
/// — or across every client of a plan server — and each `(topology,
/// workload, algorithm, vcs)` case is solved once and reused by every
/// request that asks for it. Three behaviours beyond a plain map:
///
/// * **single flight** — concurrent first requests for the same key
///   block on one solver ([`Planner::plan`] routes through it); errors
///   are broadcast to the waiting followers but never cached, so the
///   next request retries;
/// * **LRU bounds** — optional plan-count and approximate-byte budgets
///   ([`PlanCacheConfig`]) evict the least-recently-used entries;
/// * **incremental invalidation** — [`PlanCache::invalidate`] takes a
///   link delta and, via a link→plans index, visits only the plans
///   whose topology contains an affected link: plans routing demand
///   over it are evicted, survivors keep their entry only if their
///   Lemma-1 [`DeadlockCertificate`] still verifies.
///
/// Counters for all of the above are snapshotted by
/// [`PlanCache::stats`].
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    max_plans_per_shard: Option<usize>,
    max_bytes_per_shard: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    dedup_waits: AtomicU64,
    inserts: AtomicU64,
    evicted_lru: AtomicU64,
    evicted_invalidated: AtomicU64,
    recertified: AtomicU64,
    in_flight: AtomicU64,
    solves: AtomicU64,
    solve_ns_total: AtomicU64,
    solve_ns_max: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty, unbounded cache (default shard count).
    pub fn new() -> PlanCache {
        PlanCache::with_config(PlanCacheConfig::new())
    }

    /// An empty cache sized by `config`.
    pub fn with_config(config: PlanCacheConfig) -> PlanCache {
        // A capacity smaller than the shard count would starve shards
        // (per-shard cap 1 each but only `max_plans` total ever live):
        // collapse to `max_plans` shards so tiny caches are strict LRU.
        let shards = match config.max_plans {
            Some(n) => config.shards.min(n),
            None => config.shards,
        }
        .max(1);
        let per = |total: Option<usize>| total.map(|t| t.div_ceil(shards).max(1));
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            max_plans_per_shard: per(config.max_plans),
            max_bytes_per_shard: per(config.max_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evicted_lru: AtomicU64::new(0),
            evicted_invalidated: AtomicU64::new(0),
            recertified: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            solve_ns_total: AtomicU64::new(0),
            solve_ns_max: AtomicU64::new(0),
        }
    }

    /// An empty cache ready to share across threads.
    pub fn shared() -> Arc<PlanCache> {
        Arc::new(PlanCache::new())
    }

    /// An empty cache sized by `config`, ready to share across threads.
    pub fn shared_with(config: PlanCacheConfig) -> Arc<PlanCache> {
        Arc::new(PlanCache::with_config(config))
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        &self.shards[key.id().0 as usize % self.shards.len()]
    }

    /// The cached plan for `key`, if any (counts a hit or a miss; does
    /// not join an in-flight solve — that is [`Planner::plan`]'s job).
    pub fn get(&self, key: &PlanKey) -> Option<Arc<RoutePlan>> {
        let hit = self
            .shard(key)
            .lock()
            .expect("plan cache poisoned")
            .touch(key);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores `plan` under `key` (replacing any previous entry),
    /// applying the LRU budgets.
    pub fn insert(&self, key: PlanKey, plan: Arc<RoutePlan>) {
        let mut shard = self.shard(&key).lock().expect("plan cache poisoned");
        self.insert_locked(&mut shard, key, plan);
    }

    fn insert_locked(&self, shard: &mut Shard, key: PlanKey, plan: Arc<RoutePlan>) {
        shard.remove(&key); // replace, don't double-count bytes/index
        let key = Arc::new(key);
        let topo = plan.topology();
        let indexed: Vec<(u32, u32)> = topo
            .link_ids()
            .map(|l| {
                let link = topo.link(l);
                (link.src.0, link.dst.0)
            })
            .collect();
        for pair in &indexed {
            shard.link_index.entry(*pair).or_default().push(key.clone());
        }
        let bytes = plan.approx_bytes();
        shard.tick += 1;
        let entry = CacheEntry {
            plan,
            last_used: shard.tick,
            bytes,
            indexed,
        };
        shard.bytes += bytes;
        shard.entries.insert(key, entry);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let over = |shard: &Shard| {
            self.max_plans_per_shard
                .is_some_and(|cap| shard.entries.len() > cap)
                || self
                    .max_bytes_per_shard
                    .is_some_and(|cap| shard.bytes > cap)
        };
        while over(shard) && shard.entries.len() > 1 {
            let victim = shard.lru_key().expect("non-empty shard has an LRU key");
            shard.remove(&victim);
            self.evicted_lru.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up `key`, joining or opening a single-flight solve on a
    /// miss.
    fn join(&self, key: &PlanKey) -> Joined {
        let mut shard = self.shard(key).lock().expect("plan cache poisoned");
        if let Some(plan) = shard.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Joined::Hit(plan);
        }
        if let Some(flight) = shard.flights.get(key) {
            self.dedup_waits.fetch_add(1, Ordering::Relaxed);
            return Joined::Follower(flight.clone());
        }
        let flight = Arc::new(Flight::default());
        shard.flights.insert(key.clone(), flight.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        Joined::Leader(flight)
    }

    /// Publishes a leader's solve result: stores successes (LRU
    /// budgets applied), broadcasts to followers, and retires the
    /// flight. Errors are broadcast but never cached.
    fn complete(
        &self,
        key: &PlanKey,
        flight: &Arc<Flight>,
        result: Result<Arc<RoutePlan>, PlanError>,
        elapsed: std::time::Duration,
    ) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.solve_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.solve_ns_max.fetch_max(ns, Ordering::Relaxed);
        {
            let mut shard = self.shard(key).lock().expect("plan cache poisoned");
            shard.flights.remove(key);
            if let Ok(plan) = &result {
                self.insert_locked(&mut shard, key.clone(), plan.clone());
            }
        }
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        flight.publish(result);
    }

    /// Applies a link delta — failures or capacity changes, given as
    /// `(src, dst)` node-id endpoint pairs, matched in either direction
    /// — to the cached plans.
    ///
    /// Via the link→plans index this visits **only** plans whose
    /// topology contains an affected link (O(affected), not a cache
    /// scan, and never a cold cache): a plan routing nonzero
    /// [`RoutePlan::link_demands`] over an affected link is evicted;
    /// survivors are kept only while their [`DeadlockCertificate`]
    /// still [`DeadlockCertificate::verify`]s. In-flight solves are
    /// untouched (they land after the delta and re-solve on the next
    /// request if affected).
    pub fn invalidate(&self, links: &[(u32, u32)]) -> InvalidateOutcome {
        let mut outcome = InvalidateOutcome::default();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache poisoned");
            let mut affected: Vec<Arc<PlanKey>> = Vec::new();
            for &(a, b) in links {
                for pair in [(a, b), (b, a)] {
                    if let Some(keys) = shard.link_index.get(&pair) {
                        for key in keys {
                            if !affected.iter().any(|a| Arc::ptr_eq(a, key)) {
                                affected.push(key.clone());
                            }
                        }
                    }
                }
            }
            for key in affected {
                let Some(entry) = shard.entries.get(&key) else {
                    continue;
                };
                outcome.examined += 1;
                let plan = &entry.plan;
                let topo = plan.topology();
                let demands_affected = links.iter().any(|&(a, b)| {
                    [(a, b), (b, a)].iter().any(|&(src, dst)| {
                        topo.find_link(bsor_topology::NodeId(src), bsor_topology::NodeId(dst))
                            .is_some_and(|l| plan.link_demands[l.index()] > 0.0)
                    })
                });
                let keep = !demands_affected && plan.certificate().verify(plan.routes());
                if keep {
                    outcome.recertified += 1;
                    self.recertified.fetch_add(1, Ordering::Relaxed);
                } else {
                    shard.remove(&key);
                    outcome.evicted += 1;
                    self.evicted_invalidated.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        outcome
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").entries.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest node count among the cached plans' topologies, or
    /// `None` when the cache is empty. `bsor-serve` uses this to
    /// range-check the node ids of an `invalidate` delta: an id at or
    /// past every cached topology's node count cannot name a real link,
    /// so the request is a client error rather than a silent no-op.
    pub fn max_node_count(&self) -> Option<usize> {
        self.shards
            .iter()
            .filter_map(|s| {
                let shard = s.lock().expect("plan cache poisoned");
                shard
                    .entries
                    .values()
                    .map(|e| e.plan.topology().num_nodes())
                    .max()
            })
            .max()
    }

    /// Drops every cached plan (in-flight solves finish and re-insert).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache poisoned");
            shard.entries.clear();
            shard.link_index.clear();
            shard.bytes = 0;
        }
    }

    /// A snapshot of the cache's counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let (mut plans, mut bytes, mut table_bytes) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.lock().expect("plan cache poisoned");
            plans += shard.entries.len() as u64;
            bytes += shard.bytes as u64;
            table_bytes += shard
                .entries
                .values()
                .map(|e| e.plan.table_bytes() as u64)
                .sum::<u64>();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evicted_lru: self.evicted_lru.load(Ordering::Relaxed),
            evicted_invalidated: self.evicted_invalidated.load(Ordering::Relaxed),
            recertified: self.recertified.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            solve_ns_total: self.solve_ns_total.load(Ordering::Relaxed),
            solve_ns_max: self.solve_ns_max.load(Ordering::Relaxed),
            plans,
            bytes,
            table_bytes,
        }
    }
}

/// Counters a [`Planner`] accumulates across [`Planner::plan`] calls.
///
/// `solves` counts actual route selections (the expensive MILP /
/// Dijkstra work, successful or failed); `cache_hits` counts requests
/// served from the [`PlanCache`] without solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Route selections actually performed.
    pub solves: u64,
    /// Plan requests served from the cache.
    pub cache_hits: u64,
}

/// Turns scenarios + algorithms into cached, validated [`RoutePlan`]s.
///
/// Planning runs the algorithm, validates the routes (one per flow,
/// correct endpoints and VCs), **certifies** deadlock freedom (paper
/// Lemma 1, as a re-checkable [`DeadlockCertificate`]), compiles the
/// node tables and precomputes the static channel loads. With a
/// [`PlanCache`] attached, repeated requests for the same canonical
/// inputs return the same [`Arc`]ed artifact and count as
/// [`PlanStats::cache_hits`] instead of re-solving.
#[derive(Debug, Default)]
pub struct Planner {
    cache: Option<Arc<PlanCache>>,
    compact_tables: bool,
    solves: AtomicU64,
    cache_hits: AtomicU64,
}

impl Planner {
    /// A planner with no cache: every call solves.
    pub fn new() -> Planner {
        Planner::default()
    }

    /// Attaches a (shareable) plan cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Planner {
        self.cache = Some(cache);
        self
    }

    /// Compiles plans with interval-compressed routing tables
    /// ([`bsor_routing::CompactTables`]) instead of the dense arena.
    /// Routing behavior is hop-identical either way; only the memory
    /// representation (and so [`RoutePlan::table_bytes`] and the cache's
    /// LRU charge) changes. Note the [`PlanKey`] deliberately does *not*
    /// encode the representation — it addresses plan *content* — so
    /// planners with different settings sharing one cache may serve each
    /// other's (behaviorally identical) plans.
    #[must_use]
    pub fn with_compact_tables(mut self, compact: bool) -> Planner {
        self.compact_tables = compact;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// Solve / cache-hit counters so far.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            solves: self.solves.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Plans `algorithm` on `scenario`: cache lookup first, then the
    /// full select → validate → certify (Lemma 1) → compile pipeline.
    ///
    /// With a cache attached the lookup is *single-flight*: concurrent
    /// first requests for the same [`PlanKey`] block on one solver
    /// instead of re-solving — the followers count as
    /// [`PlanStats::cache_hits`] (and [`CacheStats::dedup_waits`]) when
    /// the leader succeeds. A leader's error is broadcast to its
    /// followers but never cached, so the next request retries.
    ///
    /// # Errors
    ///
    /// Any [`PlanError`]: selection failure, malformed routes, or a
    /// cyclic induced CDG.
    pub fn plan(
        &self,
        scenario: &Scenario,
        algorithm: &dyn RouteAlgorithm,
    ) -> Result<Arc<RoutePlan>, PlanError> {
        let key = PlanKey::new(scenario, &algorithm.cache_key());
        let Some(cache) = &self.cache else {
            self.solves.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(build_plan(
                scenario,
                algorithm,
                key.id(),
                self.compact_tables,
            )?));
        };
        match cache.join(&key) {
            Joined::Hit(plan) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                Ok(plan)
            }
            Joined::Follower(flight) => {
                let result = flight.wait();
                if result.is_ok() {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                result
            }
            Joined::Leader(flight) => {
                self.solves.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let result =
                    build_plan(scenario, algorithm, key.id(), self.compact_tables).map(Arc::new);
                cache.complete(&key, &flight, result.clone(), start.elapsed());
                result
            }
        }
    }
}

/// The uncached planning pipeline.
fn build_plan(
    scenario: &Scenario,
    algorithm: &dyn RouteAlgorithm,
    id: PlanId,
    compact_tables: bool,
) -> Result<RoutePlan, PlanError> {
    let routes = algorithm.routes(&scenario.ctx())?;
    routes.validate(scenario.topology(), scenario.flows(), scenario.vcs())?;
    let certificate =
        deadlock::certify(scenario.topology(), &routes, scenario.vcs()).map_err(|cycle| {
            PlanError::Deadlock {
                algorithm: algorithm.name().to_owned(),
                cycle_len: cycle.len(),
            }
        })?;
    let tables = AnyTables::build(scenario.topology(), &routes, compact_tables);
    let link_demands = routes.link_loads(scenario.topology(), scenario.flows());
    let predicted_mcl = link_demands.iter().copied().fold(0.0, f64::max);
    Ok(RoutePlan {
        id,
        algorithm: algorithm.name().to_owned(),
        scenario: scenario.clone(),
        routes,
        certificate,
        tables,
        link_demands,
        predicted_mcl,
    })
}

/// One load point to evaluate a plan at: the offered aggregate rate
/// plus the simulation knobs ([`SimEvaluator`] uses all of them;
/// [`StaticMclEvaluator`] reads only the rate and the packet length).
#[derive(Clone, Debug)]
pub struct EvalPoint {
    /// Offered aggregate injection rate, packets/cycle (split across
    /// flows proportionally to their demands).
    pub rate: f64,
    /// Simulator configuration (`vcs` is overridden with the plan's).
    pub config: SimConfig,
    /// Optional on/off bursty injection.
    pub burst: Option<BurstyOnOff>,
    /// Optional multi-phase rate schedule.
    pub phases: Option<PhaseSchedule>,
    /// Optional Markov-modulated bandwidth variation (paper §5.3).
    pub variation: Option<MarkovVariation>,
}

impl EvalPoint {
    /// A flat-Bernoulli point at `rate` under `config`.
    pub fn new(rate: f64, config: SimConfig) -> EvalPoint {
        EvalPoint {
            rate,
            config,
            burst: None,
            phases: None,
            variation: None,
        }
    }

    /// Switches injection to the on/off bursty arrival process.
    #[must_use]
    pub fn with_burst(mut self, burst: BurstyOnOff) -> EvalPoint {
        self.burst = Some(burst);
        self
    }

    /// Adds a multi-phase rate schedule.
    #[must_use]
    pub fn with_phases(mut self, phases: PhaseSchedule) -> EvalPoint {
        self.phases = Some(phases);
        self
    }

    /// Adds run-time bandwidth variation.
    #[must_use]
    pub fn with_variation(mut self, variation: MarkovVariation) -> EvalPoint {
        self.variation = Some(variation);
        self
    }
}

/// The common typed report every [`Evaluator`] backend returns.
///
/// Fields an analytical backend cannot measure are `None`/zero and
/// documented on the backend; everything both backends produce
/// (throughput, channel load, the plan's predicted MCL) is directly
/// comparable across them.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Which backend produced the report (`"sim"`, `"static-mcl"`, …).
    pub backend: &'static str,
    /// The requested rate, packets/cycle.
    pub rate: f64,
    /// Offered load actually generated (simulated backends) or assumed
    /// (analytical), packets/cycle.
    pub offered: f64,
    /// Delivered (or predicted deliverable) throughput, packets/cycle.
    pub throughput: f64,
    /// Mean packet latency, cycles (analytical backends report a
    /// zero-load bound).
    pub mean_latency: Option<f64>,
    /// Median packet latency, cycles (`None` without a distribution).
    pub p50_latency: Option<u64>,
    /// 95th-percentile packet latency, cycles.
    pub p95_latency: Option<u64>,
    /// 99th-percentile packet latency, cycles.
    pub p99_latency: Option<u64>,
    /// Worst packet latency observed, cycles (0 without a simulation).
    pub max_latency: u64,
    /// Busiest channel's load in flits/cycle (observed or predicted).
    pub max_channel_load: f64,
    /// The plan's static MCL in MB/s (identical across backends).
    pub predicted_mcl: f64,
    /// Packets generated in the measurement window (0 analytical).
    pub generated: u64,
    /// Packets delivered in the measurement window (0 analytical).
    pub delivered: u64,
    /// Whether a deadlock was observed (always `false` analytical — the
    /// plan carries a deadlock-freedom certificate).
    pub deadlocked: bool,
    /// Cycles actually simulated (0 analytical).
    pub cycles: u64,
    /// Wall-clock timing, when the backend measured one.
    pub timing: Option<RunTiming>,
}

/// Why an [`Evaluator`] could not produce an [`Evaluation`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// The simulator rejected the evaluation point (bad rate,
    /// inconsistent traffic, …).
    Sim(SimError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Sim(e)
    }
}

/// Judges a [`RoutePlan`] at an [`EvalPoint`].
///
/// Backends are interchangeable: both ship [`Evaluation`] with the same
/// schema, so a driver can answer "is the analytical estimate good
/// enough here, or do I need the engine?" by swapping one value.
pub trait Evaluator {
    /// Display name (`"sim"`, `"static-mcl"`).
    fn name(&self) -> &str;

    /// Evaluates `plan` at `point`.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    fn evaluate(&self, plan: &RoutePlan, point: &EvalPoint) -> Result<Evaluation, EvalError>;
}

/// The analytical backend: channel-load / MCL arithmetic straight from
/// the plan's static per-channel loads — no simulation, microseconds
/// per point.
///
/// With proportional injection, flow *i* offers `rate ·
/// demandᵢ/Σdemand` packets/cycle, so a channel's load in flits/cycle is
/// `rate · packet_len · load_MB/s / Σdemand`. The reported throughput
/// caps the offered rate once the busiest channel would exceed 1
/// flit/cycle (uniform-scaling assumption), and the latency is the
/// zero-load bound `demand-weighted mean hops · pipeline_latency +
/// packet_len − 1` — hops are weighted by each flow's injection share
/// (a high-demand short flow dominates the packet mix exactly as it
/// does in the engine), at the configured per-hop pipeline cost, plus
/// tail serialization. Burst/phase/variation knobs are ignored: they
/// preserve the mean load this backend reasons about.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticMclEvaluator;

impl StaticMclEvaluator {
    /// The analytical evaluator.
    pub fn new() -> StaticMclEvaluator {
        StaticMclEvaluator
    }
}

impl Evaluator for StaticMclEvaluator {
    fn name(&self) -> &str {
        "static-mcl"
    }

    fn evaluate(&self, plan: &RoutePlan, point: &EvalPoint) -> Result<Evaluation, EvalError> {
        let total_demand = plan.flows().total_demand();
        let packet_len = point.config.packet_len as f64;
        // MB/s → flits/cycle at this offered rate.
        let scale = if total_demand > 0.0 {
            point.rate * packet_len / total_demand
        } else {
            0.0
        };
        let max_channel_load = plan.predicted_mcl * scale;
        let throughput = if max_channel_load > 1.0 {
            point.rate / max_channel_load
        } else {
            point.rate
        };
        // Zero-load packet mix: injection is demand-proportional, so a
        // flow's hop count is weighted by its demand share.
        let weighted_hops = if total_demand > 0.0 {
            plan.flows()
                .iter()
                .zip(plan.routes.iter())
                .map(|(f, r)| f.demand * r.len() as f64)
                .sum::<f64>()
                / total_demand
        } else {
            0.0
        };
        let per_hop = f64::from(point.config.pipeline_latency);
        Ok(Evaluation {
            backend: "static-mcl",
            rate: point.rate,
            offered: point.rate,
            throughput,
            mean_latency: Some(weighted_hops * per_hop + packet_len - 1.0),
            p50_latency: None,
            p95_latency: None,
            p99_latency: None,
            max_latency: 0,
            max_channel_load,
            predicted_mcl: plan.predicted_mcl,
            generated: 0,
            delivered: 0,
            deadlocked: false,
            cycles: 0,
            timing: None,
        })
    }
}

/// The cycle-accurate backend: the arena engine of [`crate::engine`],
/// fed the plan's precompiled node tables (no per-point recompilation).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimEvaluator;

impl SimEvaluator {
    /// The simulating evaluator.
    pub fn new() -> SimEvaluator {
        SimEvaluator
    }

    /// Runs the engine on `plan` at `point` and returns the raw
    /// [`SimReport`] plus wall-clock timing (what [`Evaluator::evaluate`]
    /// summarizes into an [`Evaluation`]).
    ///
    /// `point.config.vcs` is overridden with the plan's VC count so the
    /// two can never diverge.
    ///
    /// # Errors
    ///
    /// [`EvalError::Sim`] when the simulator rejects the inputs.
    pub fn simulate(
        &self,
        plan: &RoutePlan,
        point: &EvalPoint,
    ) -> Result<(SimReport, RunTiming), EvalError> {
        let mut config = point.config.clone();
        config.vcs = plan.vcs();
        let mut traffic = TrafficSpec::proportional(plan.flows(), point.rate);
        if let Some(v) = point.variation {
            traffic = traffic.with_variation(v);
        }
        if let Some(b) = point.burst {
            traffic = traffic.with_burst(b);
        }
        if let Some(p) = &point.phases {
            traffic = traffic.with_phases(p.clone());
        }
        let mut sim = Simulator::with_tables(
            plan.topology(),
            plan.flows(),
            &plan.routes,
            &plan.tables,
            traffic,
            config,
        )?;
        Ok(sim.run_timed())
    }
}

impl Evaluator for SimEvaluator {
    fn name(&self) -> &str {
        "sim"
    }

    fn evaluate(&self, plan: &RoutePlan, point: &EvalPoint) -> Result<Evaluation, EvalError> {
        let (report, timing) = self.simulate(plan, point)?;
        // One per-flow histogram merge serves all three percentiles.
        let hist = report.latency_histogram();
        Ok(Evaluation {
            backend: "sim",
            rate: point.rate,
            offered: report.offered(),
            throughput: report.throughput(),
            mean_latency: report.mean_latency(),
            p50_latency: hist.p50(),
            p95_latency: hist.p95(),
            p99_latency: hist.p99(),
            max_latency: report.max_latency(),
            max_channel_load: report.max_channel_load(),
            predicted_mcl: plan.predicted_mcl,
            generated: report.generated_packets,
            delivered: report.delivered_packets,
            deadlocked: report.deadlocked,
            cycles: report.cycles,
            timing: Some(timing),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::Baseline;
    use bsor_topology::NodeId;

    fn scenario(vcs: u8) -> Scenario {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        let n = topo.num_nodes() as u32;
        for i in 0..n {
            let j = (i + n / 2) % n;
            if i != j {
                flows.push(NodeId(i), NodeId(j), 10.0);
            }
        }
        Scenario::builder(topo, flows).vcs(vcs).build().expect("ok")
    }

    #[test]
    fn plan_matches_direct_selection_and_certifies() {
        let s = scenario(2);
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let direct = s.select_routes(&Baseline::XY).expect("selects");
        assert_eq!(plan.routes(), &direct);
        assert_eq!(plan.predicted_mcl(), direct.mcl(s.topology(), s.flows()));
        assert!(plan.certificate().verify(plan.routes()));
        assert!(plan.certificate().dependencies() > 0);
        assert_eq!(plan.link_demands().len(), s.topology().num_links());
        // The tables are the ones the simulator would have compiled.
        assert_eq!(
            plan.tables(),
            &AnyTables::build(s.topology(), plan.routes(), false)
        );
        assert_eq!(plan.tables().mode(), "dense");
        assert_eq!(plan.table_bytes(), plan.tables().table_bytes());
    }

    #[test]
    fn compact_planner_is_behaviorally_identical_and_smaller() {
        let s = scenario(2);
        let dense = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let compact = Planner::new()
            .with_compact_tables(true)
            .plan(&s, &Baseline::XY)
            .expect("plans");
        assert!(compact.tables().is_compact());
        assert_eq!(compact.routes(), dense.routes());
        assert!(
            compact.table_bytes() < dense.table_bytes(),
            "compact {} vs dense {}",
            compact.table_bytes(),
            dense.table_bytes()
        );
        assert!(compact.approx_bytes() < dense.approx_bytes());
        // The cycle-accurate evaluation is byte-identical across
        // representations at a fixed seed.
        let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
        let point = EvalPoint::new(0.2, config);
        let (dense_report, _) = SimEvaluator::new().simulate(&dense, &point).expect("sims");
        let (compact_report, _) = SimEvaluator::new()
            .simulate(&compact, &point)
            .expect("sims");
        assert_eq!(dense_report, compact_report);
    }

    #[test]
    fn cache_stats_report_measured_table_bytes() {
        let s = scenario(2);
        let cache = PlanCache::shared();
        let planner = Planner::new()
            .with_compact_tables(true)
            .with_cache(cache.clone());
        let plan = planner.plan(&s, &Baseline::XY).expect("plans");
        let stats = cache.stats();
        assert_eq!(stats.table_bytes, plan.table_bytes() as u64);
    }

    #[test]
    fn cache_hit_returns_the_same_artifact_and_counts() {
        let s = scenario(2);
        let planner = Planner::new().with_cache(PlanCache::shared());
        let a = planner.plan(&s, &Baseline::XY).expect("plans");
        let b = planner.plan(&s, &Baseline::XY).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached Arc");
        assert_eq!(
            planner.stats(),
            PlanStats {
                solves: 1,
                cache_hits: 1
            }
        );
        // A different algorithm is a different key.
        let c = planner.plan(&s, &Baseline::YX).expect("plans");
        assert_ne!(a.id(), c.id());
        assert_eq!(planner.stats().solves, 2);
        assert_eq!(planner.cache().unwrap().len(), 2);
    }

    #[test]
    fn static_latency_is_demand_weighted_and_pipeline_scaled() {
        // One dominant 1-hop flow and one rare 3-hop flow: the packet
        // mix is demand-proportional, so the zero-load estimate must
        // sit near the short flow, not the unweighted hop mean.
        let topo = Topology::mesh2d(4, 1);
        let mut flows = FlowSet::new();
        flows.push(NodeId(0), NodeId(1), 900.0); // 1 hop
        flows.push(NodeId(0), NodeId(3), 100.0); // 3 hops
        let s = Scenario::builder(topo, flows).vcs(1).build().expect("ok");
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let weighted = (900.0 * 1.0 + 100.0 * 3.0) / 1000.0; // 1.2 hops
        let config = SimConfig::new(1).with_packet_len(8);
        let ev = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(0.1, config.clone()))
            .expect("static");
        assert!((ev.mean_latency.unwrap() - (weighted + 7.0)).abs() < 1e-12);
        // Doubling the per-hop pipeline cost doubles the hop term only.
        let ev2 = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(0.1, config.with_pipeline_latency(2)))
            .expect("static");
        assert!((ev2.mean_latency.unwrap() - (2.0 * weighted + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_is_structurally_identical_to_fresh_plan() {
        let s = scenario(2);
        let cached = Planner::new().with_cache(PlanCache::shared());
        cached.plan(&s, &Baseline::XY).expect("warm");
        let hit = cached.plan(&s, &Baseline::XY).expect("hit");
        let fresh = Planner::new().plan(&s, &Baseline::XY).expect("fresh");
        assert_eq!(*hit, *fresh);
    }

    #[test]
    fn same_name_different_config_algorithms_do_not_collide() {
        use bsor_cdg::{AcyclicCdg, TurnModel};
        let s = scenario(2);
        let planner = Planner::new().with_cache(PlanCache::shared());
        // ROMM's display name hides its seed; the cache key must not.
        let a = planner
            .plan(&s, &bsor_routing::Baseline::Romm { seed: 3 })
            .expect("plans");
        let b = planner
            .plan(&s, &bsor_routing::Baseline::Romm { seed: 9 })
            .expect("plans");
        assert_eq!(
            planner.stats().solves,
            2,
            "different seeds, different plans"
        );
        assert_eq!(planner.stats().cache_hits, 0);
        assert_ne!(a.id(), b.id());
        // Same-named CDGs with different dependence edges are different
        // plan inputs too: the key encodes the edge structure.
        let topo = Topology::mesh2d(4, 4);
        let wf = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let nl = AcyclicCdg::turn_model(&topo, 2, &TurnModel::north_last()).expect("valid");
        let sc = |cdg: AcyclicCdg| {
            Scenario::builder(topo.clone(), scenario(2).flows().clone())
                .cdg(cdg)
                .vcs(2)
                .build()
                .expect("ok")
        };
        let k1 = PlanKey::new(&sc(wf), "dijkstra");
        let k2 = PlanKey::new(&sc(nl), "dijkstra");
        assert_ne!(
            k1, k2,
            "CDG content must separate keys even if names differed"
        );
    }

    #[test]
    fn keys_separate_every_input_axis() {
        let s2 = scenario(2);
        let s4 = scenario(4);
        let xy2 = PlanKey::new(&s2, "xy");
        assert_eq!(xy2, PlanKey::new(&scenario(2), "xy"));
        assert_ne!(xy2, PlanKey::new(&s2, "yx"));
        assert_ne!(xy2, PlanKey::new(&s4, "xy"));
        let torus = Scenario::builder(Topology::torus2d(4, 4), s2.flows().clone())
            .vcs(2)
            .build()
            .expect("ok");
        assert_ne!(xy2, PlanKey::new(&torus, "xy"));
        assert_eq!(xy2.id(), PlanKey::new(&s2, "xy").id());
    }

    #[test]
    fn static_evaluator_is_consistent_with_the_plan() {
        let s = scenario(2);
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let config = SimConfig::new(2).with_warmup(100).with_measurement(500);
        let low = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(0.1, config.clone()))
            .expect("static");
        assert_eq!(low.backend, "static-mcl");
        assert_eq!(low.predicted_mcl, plan.predicted_mcl());
        assert_eq!(low.throughput, 0.1, "below saturation the rate passes");
        assert!(low.max_channel_load > 0.0);
        // Load scales linearly with rate; throughput caps at saturation.
        let high = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(10.0, config))
            .expect("static");
        assert!((high.max_channel_load - 100.0 * low.max_channel_load).abs() < 1e-9);
        assert!(high.throughput < high.rate);
        assert!(!high.deadlocked);
    }

    #[test]
    fn sim_evaluator_matches_scenario_simulation() {
        let s = scenario(2);
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
        let point = EvalPoint::new(0.2, config.clone());
        let ev = SimEvaluator::new().evaluate(&plan, &point).expect("sims");
        assert_eq!(ev.backend, "sim");
        assert!(ev.delivered > 0);
        // Byte-identical to the legacy path that recompiles tables.
        let report = s
            .simulate(
                plan.routes(),
                TrafficSpec::proportional(s.flows(), 0.2),
                config,
            )
            .expect("legacy path");
        assert_eq!(ev.generated, report.generated_packets);
        assert_eq!(ev.delivered, report.delivered_packets);
        assert_eq!(ev.mean_latency, report.mean_latency());
        assert_eq!(ev.max_channel_load, report.max_channel_load());
    }

    #[test]
    fn plan_error_display_and_sources() {
        let e = PlanError::Deadlock {
            algorithm: "x".into(),
            cycle_len: 4,
        };
        assert!(e.to_string().contains("refusing to plan"));
        assert!(Error::source(&e).is_none());
        let e: PlanError = AlgorithmError::Failed("boom".into()).into();
        assert_eq!(e.to_string(), "boom");
        assert!(Error::source(&e).is_some());
    }
}
