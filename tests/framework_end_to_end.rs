//! End-to-end integration: the BSOR framework against the baselines on
//! the paper's 8×8 mesh, checking the headline MCL numbers of Table 6.3
//! and that the computed routes drive the simulator correctly.

use bsor::{BsorBuilder, SelectorKind};
use bsor_lp::MilpOptions;
use bsor_repro::routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_repro::routing::{deadlock, Baseline};
use bsor_repro::sim::{SimConfig, Simulator, TrafficSpec};
use bsor_repro::topology::Topology;
use bsor_repro::workloads::{bit_complement, shuffle, transpose, wifi_transmitter};
use std::time::Duration;

#[test]
fn transpose_table_6_3_shape() {
    // Paper Table 6.3, transpose row: XY 175, YX 175, BSOR 75.
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("square");
    let xy = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let yx = Baseline::YX.select(&topo, &w.flows, 2).expect("yx");
    assert_eq!(xy.mcl(&topo, &w.flows), 175.0);
    assert_eq!(yx.mcl(&topo, &w.flows), 175.0);
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    assert_eq!(bsor.mcl, 75.0, "the paper's BSOR transpose MCL");
    assert!(deadlock::is_deadlock_free(&topo, &bsor.routes, 2));
}

#[test]
fn bit_complement_matches_dor() {
    // Paper §6.2.2 / Table 6.3: XY, YX and BSOR all reach 100 MB/s.
    let topo = Topology::mesh2d(8, 8);
    let w = bit_complement(&topo).expect("square");
    let xy = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    assert_eq!(xy.mcl(&topo, &w.flows), 100.0);
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    assert_eq!(bsor.mcl, 100.0, "BSOR cannot beat the bit-complement bound");
}

#[test]
fn shuffle_beats_dor() {
    // Paper Table 6.3, shuffle row: XY/YX 100, BSOR 75.
    let topo = Topology::mesh2d(8, 8);
    let w = shuffle(&topo).expect("square");
    let xy = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    assert_eq!(xy.mcl(&topo, &w.flows), 100.0);
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    assert!(
        bsor.mcl <= 75.0 + 1e-9,
        "BSOR shuffle MCL {} > 75",
        bsor.mcl
    );
}

#[test]
fn transmitter_reaches_largest_flow_bound() {
    // Paper Table 6.3, transmitter row: BSOR-MILP reaches 7.34 MB/s =
    // the 58.72 Mbit/s IFFT merger stream.
    let topo = Topology::mesh2d(8, 8);
    let w = wifi_transmitter(&topo).expect("fits");
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
        .run()
        .expect("routable");
    assert!(
        (bsor.mcl - w.flows.max_demand()).abs() < 1e-9,
        "transmitter MCL {} should equal the largest flow {}",
        bsor.mcl,
        w.flows.max_demand()
    );
}

#[test]
fn milp_never_loses_to_dijkstra() {
    // Thesis §6.2: "MILP solutions, when available, always have MCLs that
    // are equal or smaller than MCLs produced under Dijkstra's weighted
    // shortest path."
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("square");
    let milp = MilpSelector::new()
        .with_hop_slack(2)
        .with_max_paths(30)
        .with_options(MilpOptions {
            max_nodes: 10,
            time_limit: Some(Duration::from_secs(5)),
            ..MilpOptions::default()
        });
    let dijkstra = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
        .run()
        .expect("routable");
    let milp_result = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .selector(SelectorKind::Milp(milp))
        .run()
        .expect("solvable");
    assert!(
        milp_result.mcl <= dijkstra.mcl + 1e-9,
        "MILP {} must not lose to Dijkstra {}",
        milp_result.mcl,
        dijkstra.mcl
    );
}

#[test]
fn bsor_routes_simulate_deadlock_free_at_high_load() {
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("square");
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    let traffic = TrafficSpec::proportional(&w.flows, 4.0); // well past saturation
    let config = SimConfig::new(2).with_warmup(1_000).with_measurement(6_000);
    let report = Simulator::new(&topo, &w.flows, &bsor.routes, traffic, config)
        .expect("consistent")
        .run();
    assert!(!report.deadlocked, "BSOR routes must never deadlock");
    assert!(report.delivered_packets > 0);
}

#[test]
fn bsor_outperforms_xy_in_simulation_on_transpose() {
    // The throughput claim of Figure 6-1: near saturation, BSOR delivers
    // more than dimension-order routing on transpose.
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("square");
    let xy = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    let run = |routes| {
        let traffic = TrafficSpec::proportional(&w.flows, 2.5);
        let config = SimConfig::new(2)
            .with_warmup(2_000)
            .with_measurement(12_000);
        Simulator::new(&topo, &w.flows, routes, traffic, config)
            .expect("consistent")
            .run()
            .throughput()
    };
    let t_xy = run(&xy);
    let t_bsor = run(&bsor.routes);
    assert!(
        t_bsor > t_xy * 1.1,
        "BSOR throughput {t_bsor:.4} should clearly beat XY {t_xy:.4} past saturation"
    );
}
