//! The unified scenario/experiment pipeline.
//!
//! The paper's framework is compositional: a topology, an application's
//! flow set, a deadlock-free acyclic CDG, and a route-selection function
//! `SF` are independent inputs to one table-programmed router. This
//! module is that composition made concrete:
//!
//! * [`ScenarioCtx`] bundles everything a routing algorithm may consult —
//!   topology, its CSR index, the flows, the VC count and an acyclic CDG.
//! * [`RouteAlgorithm`] is the single trait every algorithm implements —
//!   the paper's baselines (XY/YX/O1TURN/ROMM/Valiant) and the BSOR
//!   selectors alike — replacing the two historical `select` signatures.
//! * [`ScenarioBuilder`] → [`Scenario`] → [`Experiment`] is the one
//!   pipeline every binary drives: it owns CDG construction, route
//!   selection, **mandatory deadlock validation** (paper Lemma 1), route
//!   validation, table compilation and simulation.
//!
//! ```
//! use bsor_routing::Baseline;
//! use bsor_sim::{Evaluator, RouteAlgorithm, Scenario, SimConfig, SimEvaluator};
//! use bsor_flow::FlowSet;
//! use bsor_topology::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = Topology::mesh2d(4, 4);
//! let mut flows = FlowSet::new();
//! flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 3).unwrap(), 25.0);
//! let scenario = Scenario::builder(mesh, flows).vcs(2).build()?;
//! let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
//! let experiment = scenario
//!     .experiment(&Baseline::XY)
//!     .config(config)
//!     .rate(0.05);
//! let plan = experiment.plan()?;
//! let evaluation = SimEvaluator::new().evaluate(&plan, &experiment.eval_point())?;
//! assert!(evaluation.delivered > 0);
//! # Ok(())
//! # }
//! ```
//!
//! # Adding a custom algorithm
//!
//! Implement [`RouteAlgorithm`] for your type and it plugs into every
//! driver — the sweep CLI, the figure binaries, the examples — without
//! touching any of them (register it in an `AlgorithmRegistry` to make it
//! name-addressable):
//!
//! ```
//! use bsor_routing::{Route, RouteSet, SelectError};
//! use bsor_sim::{AlgorithmError, RouteAlgorithm, ScenarioCtx};
//!
//! /// Routes every flow along a minimal path chosen by a custom rule.
//! struct MyAlgorithm;
//!
//! impl RouteAlgorithm for MyAlgorithm {
//!     fn name(&self) -> &str {
//!         "my-algorithm"
//!     }
//!
//!     fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
//!         // Consult ctx.topo / ctx.flows / ctx.vcs / ctx.cdg freely; the
//!         // pipeline will reject the result if it is not deadlock-free.
//!         let routes: Vec<Route> = ctx.flows.iter().map(|_f| todo!()).collect();
//!         Ok(RouteSet::from_routes(routes))
//!     }
//! }
//! ```

use crate::config::{SimConfig, SimError};
use crate::stats::{RunTiming, SimReport};
use crate::traffic::{BurstyOnOff, MarkovVariation, PhaseSchedule, TrafficSpec};
use crate::Simulator;
use bsor_cdg::{AcyclicCdg, CdgError, TurnModel};
use bsor_flow::{FlowNetwork, FlowSet, FlowSetError};
use bsor_routing::selectors::{
    AcObliviousSelector, DijkstraSelector, MilpSelector, RandomWalkSelector,
};
use bsor_routing::{deadlock, RouteError, RouteSet, SelectError};
use bsor_topology::{TopoIndex, Topology, TopologyKind};
use std::error::Error;
use std::fmt;

/// Everything a [`RouteAlgorithm`] may consult when computing routes.
///
/// The context is a borrow bundle: one [`Scenario`] hands the same
/// topology/index/flows/CDG to every algorithm it runs, so comparisons
/// (the paper's Tables 6.1–6.3) are guaranteed to see identical inputs.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioCtx<'a> {
    /// The interconnect.
    pub topo: &'a Topology,
    /// Flat CSR adjacency over `topo` (what the simulator's hot path and
    /// index-hungry selectors use).
    pub index: &'a TopoIndex,
    /// The application's flows with bandwidth demands.
    pub flows: &'a FlowSet,
    /// Virtual channels per physical channel.
    pub vcs: u8,
    /// An acyclic channel dependence graph over `topo` with `vcs`
    /// layers. CDG-conforming selectors route inside it; oblivious
    /// baselines and exploring frameworks may ignore it.
    pub cdg: &'a AcyclicCdg,
}

/// Why a [`RouteAlgorithm`] could not produce routes.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AlgorithmError {
    /// A route selector failed (unroutable flow, missing VCs, MILP).
    Select(SelectError),
    /// The algorithm does not apply to this topology family (e.g.
    /// dimension-order routing on a hypercube, whose links carry no grid
    /// direction).
    UnsupportedTopology {
        /// Algorithm display name.
        algorithm: String,
        /// The offending topology family.
        kind: TopologyKind,
    },
    /// A framework-level failure (e.g. no explored CDG was usable).
    Failed(String),
}

impl fmt::Display for AlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmError::Select(e) => write!(f, "{e}"),
            AlgorithmError::UnsupportedTopology { algorithm, kind } => {
                write!(f, "{algorithm} does not support {kind:?} topologies")
            }
            AlgorithmError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for AlgorithmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AlgorithmError::Select(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SelectError> for AlgorithmError {
    fn from(e: SelectError) -> Self {
        AlgorithmError::Select(e)
    }
}

/// One routing algorithm, from oblivious baseline to full BSOR framework.
///
/// This is the single route-selection surface of the workspace: the
/// paper's five baselines implement it (this module), the raw BSOR
/// selectors implement it against the context's CDG (this module), and
/// the exploring BSOR framework implements it in the `bsor` facade crate
/// (`BsorAlgorithm`). Sweeps, figures, tables and examples all consume
/// `&dyn RouteAlgorithm` — adding an algorithm means implementing this
/// trait once, not editing every caller.
///
/// # Contract
///
/// * `routes` must return one route per flow, in flow order.
/// * Routes need not be validated or proven deadlock-free by the
///   implementation — [`Scenario::select_routes`] re-checks both
///   (Lemma 1) and rejects offenders with
///   [`ExperimentError::CyclicCdg`] — but algorithms are expected to be
///   deadlock-free by construction, as every oblivious algorithm in the
///   paper is.
/// * Determinism: for a fixed context and configuration the same routes
///   must come back every time (randomized algorithms carry seeds).
pub trait RouteAlgorithm {
    /// Display name (used in tables, errors and registries).
    fn name(&self) -> &str;

    /// A string identifying the algorithm's *routing behavior* for
    /// content-addressed plan caching ([`crate::PlanKey`]): two
    /// algorithms with equal cache keys must produce identical routes
    /// on identical scenarios. Defaults to the display name, which is
    /// only correct for configuration-free algorithms — implementations
    /// carrying seeds, selector budgets or exploration strategies must
    /// fold them in (the in-tree impls use their `Debug` rendering).
    fn cache_key(&self) -> String {
        self.name().to_owned()
    }

    /// Minimum virtual channels the algorithm needs for deadlock freedom
    /// (e.g. 2 for ROMM/Valiant, per the paper §6.1).
    fn required_vcs(&self) -> u8 {
        1
    }

    /// Computes one route per flow of `ctx.flows`.
    ///
    /// # Errors
    ///
    /// Any [`AlgorithmError`]: selection failure, unsupported topology,
    /// or a framework-level failure.
    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError>;
}

/// Grid families dimension-order walks apply to: the walk steps through
/// row/column-adjacent coordinates, which rings satisfy trivially and
/// tori satisfy through their mesh sub-links. Hypercube links carry no
/// grid direction, so DOR is undefined there.
fn supports_dor(kind: TopologyKind) -> bool {
    matches!(
        kind,
        TopologyKind::Mesh2D | TopologyKind::Torus2D | TopologyKind::Ring
    )
}

impl RouteAlgorithm for bsor_routing::Baseline {
    fn name(&self) -> &str {
        bsor_routing::Baseline::name(self)
    }

    /// Includes the seed of the randomized baselines (ROMM, Valiant,
    /// O1TURN route differently per seed while sharing a display name).
    fn cache_key(&self) -> String {
        format!("{self:?}")
    }

    fn required_vcs(&self) -> u8 {
        bsor_routing::Baseline::required_vcs(self)
    }

    /// Dimension-order construction; ignores `ctx.cdg` (the baselines
    /// are deadlock-free by their VC discipline, not by CDG conformance).
    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        if !supports_dor(ctx.topo.kind()) {
            return Err(AlgorithmError::UnsupportedTopology {
                algorithm: bsor_routing::Baseline::name(self).to_owned(),
                kind: ctx.topo.kind(),
            });
        }
        self.select(ctx.topo, ctx.flows, ctx.vcs)
            .map_err(AlgorithmError::from)
    }
}

impl RouteAlgorithm for DijkstraSelector {
    fn name(&self) -> &str {
        "dijkstra"
    }

    /// Includes the weight parameters and refinement passes.
    fn cache_key(&self) -> String {
        format!("dijkstra:{self:?}")
    }

    /// Routes every flow inside `ctx.cdg` with the weighted
    /// shortest-path heuristic (paper §3.6).
    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        let net = FlowNetwork::new(ctx.topo, ctx.cdg);
        self.select(&net, ctx.flows).map_err(AlgorithmError::from)
    }
}

impl RouteAlgorithm for AcObliviousSelector {
    fn name(&self) -> &str {
        "ac-oblivious"
    }

    /// Includes the randomized-rounding seed and the link budget:
    /// different seeds round the splittable LP optimum into different
    /// route sets.
    fn cache_key(&self) -> String {
        format!("ac-oblivious:{self:?}")
    }

    /// Solves the Applegate–Cohen worst-case-optimal LP over the flow
    /// set's commodities and rounds it to CDG-conforming routes.
    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        let net = FlowNetwork::new(ctx.topo, ctx.cdg);
        self.select(&net, ctx.flows).map_err(AlgorithmError::from)
    }
}

impl RouteAlgorithm for RandomWalkSelector {
    fn name(&self) -> &str {
        "random-walk"
    }

    /// Includes the walk seed and detour probability.
    fn cache_key(&self) -> String {
        format!("random-walk:{self:?}")
    }

    /// Seeded oblivious walks towards each sink inside `ctx.cdg`.
    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        let net = FlowNetwork::new(ctx.topo, ctx.cdg);
        self.select(&net, ctx.flows).map_err(AlgorithmError::from)
    }
}

impl RouteAlgorithm for MilpSelector {
    fn name(&self) -> &str {
        "milp"
    }

    /// Includes the path budget, hop slack, objective and solver options.
    fn cache_key(&self) -> String {
        format!("milp:{self:?}")
    }

    /// Routes every flow inside `ctx.cdg` with the mixed integer-linear
    /// program (paper §3.5).
    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        let net = FlowNetwork::new(ctx.topo, ctx.cdg);
        self.select(&net, ctx.flows)
            .map(|(routes, _report)| routes)
            .map_err(AlgorithmError::from)
    }
}

/// Errors from the scenario/experiment pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The flow set failed validation against the topology.
    InvalidFlows(FlowSetError),
    /// No acyclic CDG could be derived for the scenario.
    Cdg(CdgError),
    /// The routing algorithm failed.
    Algorithm(AlgorithmError),
    /// The algorithm produced routes whose induced channel dependence
    /// graph is **cyclic** — running them could deadlock (paper
    /// Lemma 1), so the pipeline refuses to simulate.
    CyclicCdg {
        /// The offending algorithm's display name.
        algorithm: String,
        /// Length of the dependence cycle found.
        cycle_len: usize,
    },
    /// The routes are malformed (wrong endpoints, non-adjacent hops, …).
    InvalidRoutes(RouteError),
    /// The simulator rejected the scenario.
    Sim(SimError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidFlows(e) => write!(f, "invalid flow set: {e}"),
            ExperimentError::Cdg(e) => write!(f, "cannot derive an acyclic CDG: {e}"),
            ExperimentError::Algorithm(e) => write!(f, "{e}"),
            ExperimentError::CyclicCdg {
                algorithm,
                cycle_len,
            } => write!(
                f,
                "{algorithm} produced routes with a {cycle_len}-long channel dependence \
                 cycle (not deadlock-free, refusing to simulate)"
            ),
            ExperimentError::InvalidRoutes(e) => write!(f, "invalid routes: {e}"),
            ExperimentError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::InvalidFlows(e) => Some(e),
            ExperimentError::Cdg(e) => Some(e),
            ExperimentError::Algorithm(e) => Some(e),
            ExperimentError::InvalidRoutes(e) => Some(e),
            ExperimentError::Sim(e) => Some(e),
            ExperimentError::CyclicCdg { .. } => None,
        }
    }
}

impl From<FlowSetError> for ExperimentError {
    fn from(e: FlowSetError) -> Self {
        ExperimentError::InvalidFlows(e)
    }
}

impl From<CdgError> for ExperimentError {
    fn from(e: CdgError) -> Self {
        ExperimentError::Cdg(e)
    }
}

impl From<AlgorithmError> for ExperimentError {
    fn from(e: AlgorithmError) -> Self {
        ExperimentError::Algorithm(e)
    }
}

impl From<RouteError> for ExperimentError {
    fn from(e: RouteError) -> Self {
        ExperimentError::InvalidRoutes(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// Derives a default acyclic CDG for `topo`: the west-first turn model
/// on grids, falling back to routable then unprotected ad-hoc cycle
/// breaking on topologies turn models reject (tori, rings, hypercubes);
/// the arbitrary-graph families (dragonfly, fat tree, full mesh, loaded
/// files) get the up*/down* escape ordering, which keeps every pair
/// routable on symmetric graphs even at one VC.
fn default_cdg(topo: &Topology, vcs: u8) -> Result<AcyclicCdg, CdgError> {
    if matches!(
        topo.kind(),
        TopologyKind::Dragonfly
            | TopologyKind::FatTree
            | TopologyKind::FullMesh
            | TopologyKind::Arbitrary
    ) {
        return AcyclicCdg::up_down(topo, vcs);
    }
    if let Ok(cdg) = AcyclicCdg::turn_model(topo, vcs, &TurnModel::west_first()) {
        return Ok(cdg);
    }
    // The routable variant needs a turn-model skeleton, which exists only
    // where at least one valid model does (meshes); tori have grid
    // directions but no valid two-turn model, so fall through to
    // unprotected breaking there.
    if matches!(TurnModel::valid_models(topo), Ok(models) if !models.is_empty()) {
        return AcyclicCdg::ad_hoc_routable(topo, vcs, 1);
    }
    Ok(AcyclicCdg::ad_hoc(topo, vcs, 1))
}

/// Builder for a [`Scenario`].
///
/// ```
/// use bsor_sim::Scenario;
/// use bsor_flow::FlowSet;
/// use bsor_topology::Topology;
///
/// let mesh = Topology::mesh2d(4, 4);
/// let mut flows = FlowSet::new();
/// flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 0).unwrap(), 25.0);
/// let scenario = Scenario::builder(mesh, flows)
///     .named("one-flow")
///     .vcs(2)
///     .build()
///     .expect("consistent scenario");
/// assert_eq!(scenario.vcs(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    topo: Topology,
    flows: FlowSet,
    vcs: u8,
    cdg: Option<AcyclicCdg>,
}

impl ScenarioBuilder {
    /// Starts a scenario over `topo` with `flows`, 2 VCs and a default
    /// acyclic CDG.
    pub fn new(topo: Topology, flows: FlowSet) -> ScenarioBuilder {
        ScenarioBuilder {
            name: "scenario".to_owned(),
            topo,
            flows,
            vcs: 2,
            cdg: None,
        }
    }

    /// Sets a display name (propagates into reports and errors).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the virtual-channel count.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= vcs <= 8`.
    #[must_use]
    pub fn vcs(mut self, vcs: u8) -> Self {
        assert!((1..=8).contains(&vcs), "vcs must be 1..=8");
        self.vcs = vcs;
        self
    }

    /// Supplies a specific acyclic CDG instead of the default
    /// derivation.
    #[must_use]
    pub fn cdg(mut self, cdg: AcyclicCdg) -> Self {
        self.cdg = Some(cdg);
        self
    }

    /// Validates the flows and assembles the scenario (deriving the
    /// default CDG when none was supplied).
    ///
    /// Construction is eager: the CDG and the [`TopoIndex`] are built
    /// here — once per scenario, not per algorithm or load point — so
    /// every algorithm the scenario runs sees identical inputs and CDG
    /// derivation failures surface at build time rather than mid-sweep.
    /// Both are cheap next to one route selection (a CDG is one pass
    /// over the links; selectors explore many CDGs).
    ///
    /// # Errors
    ///
    /// [`ExperimentError::InvalidFlows`] for malformed flow sets,
    /// [`ExperimentError::Cdg`] when no acyclic CDG can be derived.
    pub fn build(self) -> Result<Scenario, ExperimentError> {
        self.flows.validate(&self.topo)?;
        let cdg = match self.cdg {
            Some(cdg) => cdg,
            None => default_cdg(&self.topo, self.vcs)?,
        };
        let index = TopoIndex::new(&self.topo);
        Ok(Scenario {
            name: self.name,
            index,
            topo: self.topo,
            flows: self.flows,
            vcs: self.vcs,
            cdg,
        })
    }
}

/// A fully-assembled scenario: topology + flows + VCs + acyclic CDG.
///
/// Scenarios are immutable once built; run any number of algorithms and
/// load points against one. See the [module docs](self) for the
/// end-to-end example.
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    topo: Topology,
    index: TopoIndex,
    flows: FlowSet,
    vcs: u8,
    cdg: AcyclicCdg,
}

impl Scenario {
    /// Starts building a scenario.
    pub fn builder(topo: Topology, flows: FlowSet) -> ScenarioBuilder {
        ScenarioBuilder::new(topo, flows)
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The flows.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// The virtual-channel count.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// The acyclic CDG the scenario carries.
    pub fn cdg(&self) -> &AcyclicCdg {
        &self.cdg
    }

    /// The borrow bundle handed to algorithms.
    pub fn ctx(&self) -> ScenarioCtx<'_> {
        ScenarioCtx {
            topo: &self.topo,
            index: &self.index,
            flows: &self.flows,
            vcs: self.vcs,
            cdg: &self.cdg,
        }
    }

    /// Runs `algorithm` and **validates** the result: one route per flow
    /// with correct endpoints and VCs, and — the paper's Lemma 1 — an
    /// acyclic induced channel dependence graph.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Algorithm`] when selection fails,
    /// [`ExperimentError::InvalidRoutes`] for malformed routes, and
    /// [`ExperimentError::CyclicCdg`] when the routes are not
    /// deadlock-free.
    pub fn select_routes(
        &self,
        algorithm: &dyn RouteAlgorithm,
    ) -> Result<RouteSet, ExperimentError> {
        let routes = algorithm.routes(&self.ctx())?;
        routes.validate(&self.topo, &self.flows, self.vcs)?;
        match deadlock::analyze(&self.topo, &routes, self.vcs) {
            deadlock::DeadlockAnalysis::Free => Ok(routes),
            deadlock::DeadlockAnalysis::Cyclic { cycle } => Err(ExperimentError::CyclicCdg {
                algorithm: algorithm.name().to_owned(),
                cycle_len: cycle.len(),
            }),
        }
    }

    /// Simulates pre-selected `routes` under `traffic` (compiling the
    /// node tables and running the cycle-accurate engine).
    ///
    /// `config.vcs` is overridden with the scenario's VC count so the
    /// two can never diverge.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Sim`] when the simulator rejects the inputs.
    pub fn simulate(
        &self,
        routes: &RouteSet,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<SimReport, ExperimentError> {
        self.simulate_timed(routes, traffic, config)
            .map(|(report, _)| report)
    }

    /// Like [`Scenario::simulate`], additionally measuring wall-clock
    /// time.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Sim`] when the simulator rejects the inputs.
    pub fn simulate_timed(
        &self,
        routes: &RouteSet,
        traffic: TrafficSpec,
        mut config: SimConfig,
    ) -> Result<(SimReport, RunTiming), ExperimentError> {
        config.vcs = self.vcs;
        let mut sim = Simulator::new(&self.topo, &self.flows, routes, traffic, config)?;
        Ok(sim.run_timed())
    }

    /// Starts an [`Experiment`] pairing this scenario with `algorithm`.
    pub fn experiment<'a>(&'a self, algorithm: &'a dyn RouteAlgorithm) -> Experiment<'a> {
        Experiment {
            scenario: self,
            algorithm,
            config: SimConfig::new(self.vcs),
            rate: 1.0,
            variation: None,
            burst: None,
            phases: None,
        }
    }
}

/// One scenario × one algorithm × one load point, ready to run.
///
/// **Superseded.** `Experiment` predates the plan/evaluate split and is
/// kept as a thin shim for one release: [`Experiment::run`] now plans
/// through [`crate::Planner`] (route selection, Lemma-1 certification,
/// table compilation) and evaluates through [`crate::SimEvaluator`],
/// producing byte-identical reports. New code should use those two
/// layers directly — planning once and evaluating many points is what
/// makes rate/burst/saturation sweeps cheap.
#[derive(Clone)]
pub struct Experiment<'a> {
    scenario: &'a Scenario,
    algorithm: &'a dyn RouteAlgorithm,
    config: SimConfig,
    rate: f64,
    variation: Option<MarkovVariation>,
    burst: Option<BurstyOnOff>,
    phases: Option<PhaseSchedule>,
}

impl fmt::Debug for Experiment<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("scenario", &self.scenario.name)
            .field("algorithm", &self.algorithm.name())
            .field("rate", &self.rate)
            .finish_non_exhaustive()
    }
}

impl<'a> Experiment<'a> {
    /// Overrides the simulator configuration (VC count is pinned to the
    /// scenario's).
    #[must_use]
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the aggregate offered injection rate in packets/cycle
    /// (split across flows proportionally to their demands).
    #[must_use]
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Adds run-time bandwidth variation (paper §5.3).
    #[must_use]
    pub fn variation(mut self, variation: MarkovVariation) -> Self {
        self.variation = Some(variation);
        self
    }

    /// Switches injection to the on/off bursty arrival process.
    #[must_use]
    pub fn burst(mut self, burst: BurstyOnOff) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Adds a multi-phase rate schedule (cycle-boundary switching).
    #[must_use]
    pub fn phases(mut self, phases: PhaseSchedule) -> Self {
        self.phases = Some(phases);
        self
    }

    /// The algorithm under test.
    pub fn algorithm(&self) -> &dyn RouteAlgorithm {
        self.algorithm
    }

    /// Selects and validates routes without simulating (see
    /// [`Scenario::select_routes`]).
    ///
    /// # Errors
    ///
    /// Selection, validation and [`ExperimentError::CyclicCdg`] errors.
    pub fn select_routes(&self) -> Result<RouteSet, ExperimentError> {
        self.scenario.select_routes(self.algorithm)
    }

    /// The experiment's load point in [`crate::Evaluator`] terms.
    pub fn eval_point(&self) -> crate::plan::EvalPoint {
        let mut point = crate::plan::EvalPoint::new(self.rate, self.config.clone());
        if let Some(v) = self.variation {
            point = point.with_variation(v);
        }
        if let Some(b) = self.burst {
            point = point.with_burst(b);
        }
        if let Some(p) = &self.phases {
            point = point.with_phases(p.clone());
        }
        point
    }

    /// Plans the experiment's algorithm on its scenario (uncached; hold
    /// the [`crate::RoutePlan`] yourself — or use a
    /// [`crate::Planner`] with a cache — to evaluate many points).
    ///
    /// # Errors
    ///
    /// Planning failures, converted to their [`ExperimentError`]
    /// equivalents.
    pub fn plan(&self) -> Result<std::sync::Arc<crate::plan::RoutePlan>, ExperimentError> {
        crate::plan::Planner::new()
            .plan(self.scenario, self.algorithm)
            .map_err(ExperimentError::from)
    }

    /// Runs the full pipeline: plan (select → validate → certify
    /// Lemma 1 → compile tables) → simulate.
    ///
    /// This is a compatibility shim over [`crate::Planner`] +
    /// [`crate::SimEvaluator`]; one call plans and evaluates a single
    /// point. Drivers sweeping many rates should plan once and evaluate
    /// per point instead.
    ///
    /// # Errors
    ///
    /// Any [`ExperimentError`].
    #[deprecated(
        since = "0.1.0",
        note = "plan once with `Planner::plan` and evaluate with `SimEvaluator` \
                (`Experiment::plan` + `Experiment::eval_point` bridge directly)"
    )]
    pub fn run(&self) -> Result<SimReport, ExperimentError> {
        let plan = self.plan()?;
        let (report, _timing) = crate::plan::SimEvaluator::new()
            .simulate(&plan, &self.eval_point())
            .map_err(|crate::plan::EvalError::Sim(e)| ExperimentError::Sim(e))?;
        Ok(report)
    }

    /// Simulates pre-selected routes (sharing one route computation
    /// across several load points).
    ///
    /// **Superseded:** the sweep harness now shares a
    /// [`crate::RoutePlan`] instead, which also reuses the compiled
    /// node tables; this entry point recompiles them per call.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Sim`] when the simulator rejects the inputs.
    #[deprecated(
        since = "0.1.0",
        note = "share an `Arc<RoutePlan>` (`Experiment::plan`) and evaluate with \
                `SimEvaluator` — this entry point recompiles the node tables per call"
    )]
    pub fn run_routes(&self, routes: &RouteSet) -> Result<SimReport, ExperimentError> {
        let mut traffic = TrafficSpec::proportional(&self.scenario.flows, self.rate);
        if let Some(v) = self.variation {
            traffic = traffic.with_variation(v);
        }
        if let Some(b) = self.burst {
            traffic = traffic.with_burst(b);
        }
        if let Some(p) = &self.phases {
            traffic = traffic.with_phases(p.clone());
        }
        self.scenario.simulate(routes, traffic, self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::{Baseline, Route, RouteHop, VcMask};
    use bsor_topology::NodeId;

    fn mesh_flows(topo: &Topology) -> FlowSet {
        let mut flows = FlowSet::new();
        let n = topo.num_nodes() as u32;
        for i in 0..n {
            let j = (i + n / 2) % n;
            if i != j {
                flows.push(NodeId(i), NodeId(j), 10.0);
            }
        }
        flows
    }

    #[test]
    fn baseline_through_trait_matches_direct_select() {
        let topo = Topology::mesh2d(4, 4);
        let flows = mesh_flows(&topo);
        let direct = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let scenario = Scenario::builder(topo, flows).vcs(2).build().expect("ok");
        let via_trait = scenario.select_routes(&Baseline::XY).expect("xy via trait");
        assert_eq!(direct, via_trait);
    }

    #[test]
    fn dijkstra_through_trait_conforms_to_ctx_cdg() {
        let topo = Topology::mesh2d(4, 4);
        let flows = mesh_flows(&topo);
        let scenario = Scenario::builder(topo, flows).vcs(2).build().expect("ok");
        let selector = DijkstraSelector::new();
        let routes = scenario.select_routes(&selector).expect("routable");
        assert_eq!(routes.len(), scenario.flows().len());
        assert!(deadlock::is_deadlock_free(scenario.topology(), &routes, 2));
    }

    #[test]
    fn baselines_reject_hypercubes_with_typed_error() {
        let topo = Topology::hypercube(3);
        let flows = mesh_flows(&topo);
        let scenario = Scenario::builder(topo, flows).vcs(2).build().expect("ok");
        let err = scenario.select_routes(&Baseline::XY).unwrap_err();
        assert!(matches!(
            err,
            ExperimentError::Algorithm(AlgorithmError::UnsupportedTopology { .. })
        ));
    }

    #[test]
    fn required_vcs_propagates_through_trait() {
        let topo = Topology::mesh2d(4, 4);
        let flows = mesh_flows(&topo);
        let scenario = Scenario::builder(topo, flows).vcs(1).build().expect("ok");
        let algo = Baseline::Romm { seed: 1 };
        assert_eq!(RouteAlgorithm::required_vcs(&algo), 2);
        let err = scenario.select_routes(&algo).unwrap_err();
        assert!(matches!(
            err,
            ExperimentError::Algorithm(AlgorithmError::Select(
                SelectError::NeedsVirtualChannels { .. }
            ))
        ));
    }

    /// An adversarial algorithm producing the canonical 2×2 turning-ring
    /// deadlock; the pipeline must refuse it.
    struct RingOfDeath;

    impl RouteAlgorithm for RingOfDeath {
        fn name(&self) -> &str {
            "ring-of-death"
        }

        fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
            let topo = ctx.topo;
            let n = |x, y| topo.node_at(x, y).expect("in range");
            let hop = |a, b| RouteHop {
                link: topo.find_link(a, b).expect("adjacent"),
                vcs: VcMask::all(ctx.vcs),
            };
            let corners = [
                (n(0, 0), n(0, 1), n(1, 1)),
                (n(0, 1), n(1, 1), n(1, 0)),
                (n(1, 1), n(1, 0), n(0, 0)),
                (n(1, 0), n(0, 0), n(0, 1)),
            ];
            Ok(RouteSet::from_routes(
                ctx.flows
                    .iter()
                    .zip(corners.iter().cycle())
                    .map(|(f, &(a, b, c))| Route {
                        flow: f.id,
                        hops: vec![hop(a, b), hop(b, c)],
                    })
                    .collect(),
            ))
        }
    }

    #[test]
    fn cyclic_routes_are_rejected_not_simulated() {
        let topo = Topology::mesh2d(2, 2);
        let mut flows = FlowSet::new();
        let n = |x, y| topo.node_at(x, y).unwrap();
        flows.push(n(0, 0), n(1, 1), 10.0);
        flows.push(n(0, 1), n(1, 0), 10.0);
        flows.push(n(1, 1), n(0, 0), 10.0);
        flows.push(n(1, 0), n(0, 1), 10.0);
        let scenario = Scenario::builder(topo, flows).vcs(1).build().expect("ok");
        let err = scenario.select_routes(&RingOfDeath).unwrap_err();
        match &err {
            ExperimentError::CyclicCdg {
                algorithm,
                cycle_len,
            } => {
                assert_eq!(algorithm, "ring-of-death");
                assert_eq!(*cycle_len, 4);
            }
            other => panic!("expected CyclicCdg, got {other:?}"),
        }
        assert!(err.to_string().contains("refusing to simulate"));
    }

    #[test]
    #[allow(deprecated)] // shim regression coverage until removal
    fn experiment_runs_end_to_end() {
        let topo = Topology::mesh2d(4, 4);
        let flows = mesh_flows(&topo);
        let scenario = Scenario::builder(topo, flows)
            .named("smoke")
            .vcs(2)
            .build()
            .expect("ok");
        let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
        let report = scenario
            .experiment(&Baseline::XY)
            .config(config)
            .rate(0.2)
            .run()
            .expect("runs");
        assert!(report.delivered_packets > 0);
        assert!(!report.deadlocked);
    }

    #[test]
    #[allow(deprecated)] // shim regression coverage until removal
    fn experiment_reuses_routes_across_rates() {
        let topo = Topology::mesh2d(4, 4);
        let flows = mesh_flows(&topo);
        let scenario = Scenario::builder(topo, flows).vcs(2).build().expect("ok");
        let exp = scenario
            .experiment(&Baseline::YX)
            .config(SimConfig::new(2).with_warmup(100).with_measurement(500));
        let routes = exp.select_routes().expect("yx");
        let light = exp.clone().rate(0.05).run_routes(&routes).expect("light");
        let heavy = exp.rate(2.0).run_routes(&routes).expect("heavy");
        assert!(heavy.generated_packets >= light.generated_packets);
    }

    #[test]
    fn default_cdg_exists_for_every_topology_family() {
        for topo in [
            Topology::mesh2d(4, 4),
            Topology::torus2d(4, 4),
            Topology::ring(6),
            Topology::hypercube(3),
            bsor_topology::dragonfly(2, 3, 2).expect("valid"),
            bsor_topology::fat_tree(4).expect("valid"),
            bsor_topology::full_mesh(6).expect("valid"),
        ] {
            let cdg = default_cdg(&topo, 2).expect("derivable");
            assert_eq!(cdg.vcs(), 2);
        }
    }

    #[test]
    fn arbitrary_graph_scenarios_route_at_one_vc() {
        // The up*/down* default CDG keeps CDG-conforming selectors
        // (here Dijkstra) fully routable on the new families with a
        // single VC — the VC-free escape-ordering path.
        for topo in [
            bsor_topology::dragonfly(2, 3, 2).expect("valid"),
            bsor_topology::fat_tree(4).expect("valid"),
        ] {
            let flows = mesh_flows(&topo);
            let scenario = Scenario::builder(topo, flows).vcs(1).build().expect("ok");
            assert_eq!(scenario.cdg().name(), "up-down");
            let routes = scenario
                .select_routes(&DijkstraSelector::new())
                .expect("routable");
            assert!(deadlock::is_deadlock_free(scenario.topology(), &routes, 1));
        }
    }

    #[test]
    fn error_display_and_sources() {
        let e = ExperimentError::CyclicCdg {
            algorithm: "x".into(),
            cycle_len: 3,
        };
        assert!(e.to_string().contains("deadlock"));
        let e: ExperimentError = AlgorithmError::Failed("boom".into()).into();
        assert_eq!(e.to_string(), "boom");
        assert!(Error::source(&e).is_some());
        let e: ExperimentError = FlowSetError::SelfFlow(bsor_flow::FlowId(0)).into();
        assert!(e.to_string().contains("invalid flow set"));
        let a = AlgorithmError::UnsupportedTopology {
            algorithm: "XY".into(),
            kind: TopologyKind::Hypercube,
        };
        assert!(a.to_string().contains("XY"));
    }
}
