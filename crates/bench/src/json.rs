//! A minimal, dependency-free JSON writer *and parser* with
//! deterministic output.
//!
//! `BENCH_sweep.json` must be byte-identical across runs at a fixed seed
//! so CI can diff two sweeps to detect nondeterminism. serde is not
//! available (crates.io is unreachable from the build environment), and
//! a hand-rolled emitter is easy to keep deterministic: object keys stay
//! in insertion order, floats print through Rust's shortest-round-trip
//! `Display`, and there is no reflection or hashing anywhere.
//!
//! The parser ([`Json::parse`]) exists for the `bsor-serve`
//! line-delimited protocol: strict JSON (no comments, no trailing
//! commas), typed errors with byte offsets, and a recursion-depth limit
//! so adversarial input cannot overflow the stack.

use std::fmt::Write as _;

/// Nesting depth [`Json::parse`] accepts before rejecting the input
/// (protocol messages are a handful of levels deep; a parser recursing
/// on `[[[[…` unboundedly could overflow the stack).
const MAX_PARSE_DEPTH: usize = 64;

/// A JSON value tree. Build with the `From` impls and
/// [`Json::object`]/[`Json::array`], serialize with [`Json::pretty`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integers (kept separate from floats so counts never print
    /// as `1.0`).
    Int(i64),
    /// Unsigned integers (JSON numbers are arbitrary precision, so the
    /// full `u64` range round-trips — seeds use all 64 bits).
    UInt(u64),
    /// Finite floats; NaN/infinity serialize as `null` per JSON rules.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Json>),
    /// Key/value pairs, serialized in insertion order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keeping their order.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// An array value.
    pub fn array(items: Vec<Json>) -> Json {
        Json::Array(items)
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on one line with no whitespace (the line-delimited
    /// serve protocol; no trailing newline). Deterministic like
    /// [`Json::pretty`]: insertion-ordered keys, shortest-round-trip
    /// floats.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    /// Parses strict JSON. The whole input must be one value (plus
    /// surrounding whitespace); anything else is a typed
    /// [`JsonParseError`] with the byte offset — never a panic.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` on absent keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A non-negative integer variant as a `u64` (floats only when
    /// integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::UInt(u) => Some(*u),
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                write!(out, "{i}").expect("string write");
            }
            Json::UInt(u) => {
                write!(out, "{u}").expect("string write");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; force a ".0"
                    // so floats stay floats for downstream readers.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        write!(out, "{f:.1}").expect("string write");
                    } else {
                        write!(out, "{f}").expect("string write");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Why [`Json::parse`] rejected an input.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct JsonParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low
                                // surrogate is required.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(JsonParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            }),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::from(true).pretty(), "true\n");
        assert_eq!(Json::from(42u64).pretty(), "42\n");
        assert_eq!(Json::from(u64::MAX).pretty(), "18446744073709551615\n");
        assert_eq!(Json::from(0.5).pretty(), "0.5\n");
        assert_eq!(Json::from(3.0).pretty(), "3.0\n");
        assert_eq!(Json::from(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::from("a\"b").pretty(), "\"a\\\"b\"\n");
        assert_eq!(Json::from(None::<f64>).pretty(), "null\n");
    }

    #[test]
    fn structure_and_key_order_are_stable() {
        let doc = Json::object(vec![
            ("b", Json::from(1u64)),
            ("a", Json::array(vec![Json::Null, Json::from("x")])),
            ("empty", Json::object(vec![])),
        ]);
        let expected =
            "{\n  \"b\": 1,\n  \"a\": [\n    null,\n    \"x\"\n  ],\n  \"empty\": {}\n}\n";
        assert_eq!(doc.pretty(), expected);
        // Byte-identical on re-serialization.
        assert_eq!(doc.pretty(), doc.pretty());
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::from("\u{1}").pretty(), "\"\\u0001\"\n");
        assert_eq!(Json::from("a\tb\nc").pretty(), "\"a\\tb\\nc\"\n");
    }

    #[test]
    fn parse_round_trips_both_serializations() {
        let doc = Json::object(vec![
            ("op", Json::from("plan")),
            ("id", Json::from(7u64)),
            ("neg", Json::Int(-3)),
            ("rate", Json::from(0.25)),
            ("whole", Json::from(3.0)),
            (
                "links",
                Json::array(vec![Json::from(0u64), Json::from(1u64)]),
            ),
            ("note", Json::from("a\"b\\c\nd")),
            ("none", Json::Null),
            ("on", Json::from(true)),
        ]);
        assert_eq!(Json::parse(&doc.compact()).expect("compact"), doc);
        assert_eq!(Json::parse(&doc.pretty()).expect("pretty"), doc);
    }

    #[test]
    fn parse_distinguishes_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_malformed_input_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{\"a\":1}extra",
            "--1",
            "\u{1}",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.offset <= bad.len());
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn parse_handles_escapes_and_surrogates() {
        assert_eq!(
            Json::parse("\"a\\u0041\\n\\t\\\\\"").unwrap(),
            Json::from("aA\n\t\\")
        );
        // U+1F600 as a surrogate pair.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::from("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn accessors_read_protocol_shapes() {
        let req = Json::parse(r#"{"op":"evaluate","id":3,"rate":0.2,"sim":true,"links":[[0,1]]}"#)
            .expect("parses");
        assert_eq!(req.get("op").and_then(Json::as_str), Some("evaluate"));
        assert_eq!(req.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(req.get("rate").and_then(Json::as_f64), Some(0.2));
        assert_eq!(req.get("sim").and_then(Json::as_bool), Some(true));
        assert_eq!(
            req.get("links").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(req.get("missing"), None);
        assert_eq!(Json::Null.get("op"), None);
    }
}
