//! Acyclic channel dependence graphs and the strategies that derive them.

use crate::cdg::{Cdg, CdgError, CdgVertex, VcId};
use crate::turn::{self, TurnModel};
use bsor_netgraph::{algo, DiGraph, NodeId as GraphNode};
use bsor_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Recipe for breaking cycles in one virtual-channel layer of a
/// [`AcyclicCdg::virtual_networks`] construction.
#[derive(Clone, Debug)]
pub enum LayerRecipe {
    /// Remove the layer's prohibited-turn edges.
    TurnModel(TurnModel),
    /// Randomized iterative cycle breaking with the given seed.
    AdHoc {
        /// RNG seed, so constructions are reproducible.
        seed: u64,
    },
    /// Random-priority-order breaking with the given seed.
    RandomOrder {
        /// RNG seed, so constructions are reproducible.
        seed: u64,
    },
}

/// An acyclic CDG: a [`Cdg`] whose remaining dependence edges admit a
/// topological order. Routes conforming to it are deadlock-free (paper
/// Lemma 1, Dally & Aoki).
#[derive(Clone, Debug)]
pub struct AcyclicCdg {
    cdg: Cdg,
    name: String,
    removed: usize,
    /// `rank[v]` = position of vertex `v` in a topological order.
    rank: Vec<u32>,
}

impl AcyclicCdg {
    /// Wraps a CDG, validating acyclicity.
    ///
    /// `removed` records how many dependence edges the derivation deleted
    /// (reported by [`AcyclicCdg::removed_edges`]).
    ///
    /// # Errors
    ///
    /// [`CdgError::StillCyclic`] if the graph still has a cycle.
    pub fn try_new(cdg: Cdg, name: impl Into<String>, removed: usize) -> Result<Self, CdgError> {
        let name = name.into();
        match algo::toposort(cdg.graph()) {
            Ok(order) => {
                let mut rank = vec![0u32; cdg.graph().node_count()];
                for (pos, v) in order.iter().enumerate() {
                    rank[v.index()] = pos as u32;
                }
                Ok(AcyclicCdg {
                    cdg,
                    name,
                    removed,
                    rank,
                })
            }
            Err(_) => Err(CdgError::StillCyclic { strategy: name }),
        }
    }

    /// Derives an acyclic CDG by removing a turn model's prohibited turns
    /// (paper §3.3, Figure 3-3).
    ///
    /// # Errors
    ///
    /// * [`CdgError::NotAGrid`] if channels carry no directions.
    /// * [`CdgError::StillCyclic`] if the model leaves cycles (one of the
    ///   4 invalid two-turn combinations, or any turn model on a torus).
    /// * [`CdgError::NoVirtualChannels`] if `vcs == 0`.
    pub fn turn_model(topo: &Topology, vcs: u8, model: &TurnModel) -> Result<Self, CdgError> {
        if vcs == 0 {
            return Err(CdgError::NoVirtualChannels);
        }
        if topo.link_ids().any(|l| topo.link(l).direction.is_none()) {
            return Err(CdgError::NotAGrid);
        }
        let mut cdg = Cdg::build(topo, vcs);
        let before = cdg.graph().edge_count();
        turn::apply(&mut cdg, model);
        let removed = before - cdg.graph().edge_count();
        AcyclicCdg::try_new(cdg, model.name(), removed)
    }

    /// Derives an acyclic CDG by repeatedly finding a cycle and deleting a
    /// random edge on it (the paper's "ad hoc or random fashion",
    /// Figure 3-4). Always succeeds, on any topology — but may leave some
    /// node pairs with no conforming route; prefer
    /// [`AcyclicCdg::ad_hoc_routable`] on grids when full routability is
    /// required.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn ad_hoc(topo: &Topology, vcs: u8, seed: u64) -> Self {
        let mut cdg = Cdg::build(topo, vcs);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut removed = 0usize;
        while let Some(cycle) = algo::find_cycle(cdg.graph()) {
            let victim = cycle[rng.gen_range(0..cycle.len())];
            cdg.graph_mut().remove_edge(victim);
            removed += 1;
        }
        AcyclicCdg::try_new(cdg, format!("ad-hoc-{seed}"), removed)
            .expect("iterative cycle breaking terminates with an acyclic graph")
    }

    /// Like [`AcyclicCdg::ad_hoc`], but guarantees that every node pair
    /// remains routable: a randomly chosen valid turn model's dependence
    /// edges (on VC 0) are protected from removal, so the surviving CDG
    /// always contains a full set of turn-model routes while the rest of
    /// the dependence structure is broken randomly.
    ///
    /// Any cycle necessarily contains a non-protected edge (the protected
    /// skeleton is itself acyclic), so the process always terminates.
    ///
    /// # Errors
    ///
    /// [`CdgError::NotAGrid`] when the topology has no grid directions
    /// (no turn-model skeleton exists; use [`AcyclicCdg::ad_hoc`] there),
    /// or [`CdgError::NoVirtualChannels`] when `vcs == 0`.
    pub fn ad_hoc_routable(topo: &Topology, vcs: u8, seed: u64) -> Result<Self, CdgError> {
        if vcs == 0 {
            return Err(CdgError::NoVirtualChannels);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let models = TurnModel::valid_models(topo)?;
        let skeleton = &models[rng.gen_range(0..models.len())];
        let mut cdg = Cdg::build(topo, vcs);
        // Protected edges: VC0 -> VC0 dependences the skeleton model allows.
        let protected: std::collections::HashSet<_> = cdg
            .graph()
            .edges()
            .filter(|&(_, s, d, _)| {
                let a = cdg.vertex(s);
                let b = cdg.vertex(d);
                if a.vc.0 != 0 || b.vc.0 != 0 {
                    return false;
                }
                match cdg.edge_turn(s, d) {
                    Some((from, to)) => skeleton.allows(from, to),
                    None => true,
                }
            })
            .map(|(id, _, _, _)| id)
            .collect();
        let mut removed = 0usize;
        while let Some(cycle) = algo::find_cycle(cdg.graph()) {
            let candidates: Vec<_> = cycle
                .iter()
                .copied()
                .filter(|e| !protected.contains(e))
                .collect();
            debug_assert!(
                !candidates.is_empty(),
                "every cycle contains a non-protected edge"
            );
            let victim = candidates[rng.gen_range(0..candidates.len())];
            cdg.graph_mut().remove_edge(victim);
            removed += 1;
        }
        AcyclicCdg::try_new(cdg, format!("ad-hoc-routable-{seed}"), removed)
    }

    /// Derives an acyclic CDG by drawing a random priority order over the
    /// vertices and keeping only priority-increasing edges. Removes more
    /// edges than [`AcyclicCdg::ad_hoc`] but is O(V + E).
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn random_order(topo: &Topology, vcs: u8, seed: u64) -> Self {
        let mut cdg = Cdg::build(topo, vcs);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = cdg.graph().node_count();
        let mut priority: Vec<u32> = (0..n as u32).collect();
        priority.shuffle(&mut rng);
        let before = cdg.graph().edge_count();
        cdg.graph_mut()
            .retain_edges(|_, s, d, _| priority[s.index()] < priority[d.index()]);
        let removed = before - cdg.graph().edge_count();
        AcyclicCdg::try_new(cdg, format!("random-order-{seed}"), removed)
            .expect("priority-increasing edges cannot form a cycle")
    }

    /// Derives an acyclic CDG from an up*/down* spanning-tree order — the
    /// VC-free escape ordering for arbitrary graphs (no grid directions
    /// required).
    ///
    /// A BFS tree rooted at node 0 orders nodes by `(depth, id)`;
    /// channels pointing toward a smaller key are *up*, all others
    /// *down*, and every dependence edge from a down channel to an up
    /// channel is removed (on every VC layer). Kept edges strictly
    /// increase the channel order `up: K_max - key(head)`,
    /// `down: K_max + 1 + key(head)`, so the result is acyclic by
    /// construction. On symmetric topologies every node pair stays
    /// routable — climb the tree to the common ancestor, then descend —
    /// even with a single virtual channel; on asymmetric graphs some
    /// pairs may lose all conforming routes (route selection reports
    /// that as a typed error, and
    /// `bsor_routing::deadlock::certify_arbitrary` refutes such graphs
    /// where no deadlock-free alternative exists).
    ///
    /// # Errors
    ///
    /// [`CdgError::NoVirtualChannels`] when `vcs == 0`.
    pub fn up_down(topo: &Topology, vcs: u8) -> Result<Self, CdgError> {
        if vcs == 0 {
            return Err(CdgError::NoVirtualChannels);
        }
        let n = topo.num_nodes();
        let mut depth = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        depth[0] = 0;
        queue.push_back(0usize);
        while let Some(x) = queue.pop_front() {
            for &l in topo.out_links(NodeId(x as u32)) {
                let y = topo.link(l).dst.index();
                if depth[y] == usize::MAX {
                    depth[y] = depth[x] + 1;
                    queue.push_back(y);
                }
            }
        }
        let mut by_key: Vec<usize> = (0..n).collect();
        by_key.sort_by_key(|&i| (depth[i], i));
        let mut pos = vec![0u32; n];
        for (p, &i) in by_key.iter().enumerate() {
            pos[i] = p as u32;
        }
        let up = |link: bsor_topology::LinkId| {
            let l = topo.link(link);
            pos[l.dst.index()] < pos[l.src.index()]
        };
        let mut cdg = Cdg::build(topo, vcs);
        let before = cdg.graph().edge_count();
        let doomed: Vec<_> = cdg
            .graph()
            .edges()
            .filter(|&(_, s, d, _)| !up(cdg.vertex(s).link) && up(cdg.vertex(d).link))
            .map(|(id, _, _, _)| id)
            .collect();
        for e in doomed {
            cdg.graph_mut().remove_edge(e);
        }
        let removed = before - cdg.graph().edge_count();
        Ok(AcyclicCdg::try_new(cdg, "up-down", removed)
            .expect("down-to-up edge removal leaves a rank-monotone graph"))
    }

    /// Derives a multi-VC acyclic CDG in which a packet may take *any*
    /// turn provided it climbs to a strictly higher virtual channel, while
    /// same-VC moves must respect `model` (paper Figure 3-6(c): "all turns
    /// are allowed provided the route switches virtual channels").
    ///
    /// # Errors
    ///
    /// Same conditions as [`AcyclicCdg::turn_model`].
    pub fn escalating_vc(topo: &Topology, vcs: u8, model: &TurnModel) -> Result<Self, CdgError> {
        if vcs == 0 {
            return Err(CdgError::NoVirtualChannels);
        }
        if topo.link_ids().any(|l| topo.link(l).direction.is_none()) {
            return Err(CdgError::NotAGrid);
        }
        let mut cdg = Cdg::build(topo, vcs);
        let before = cdg.graph().edge_count();
        let doomed: Vec<_> = cdg
            .graph()
            .edges()
            .filter(|&(_, s, d, _)| {
                let a = cdg.vertex(s);
                let b = cdg.vertex(d);
                if b.vc.0 > a.vc.0 {
                    return false; // climbing a VC legalizes any turn
                }
                if b.vc.0 < a.vc.0 {
                    return true; // never descend
                }
                match cdg.edge_turn(s, d) {
                    Some((from, to)) => !model.allows(from, to),
                    None => false,
                }
            })
            .map(|(id, _, _, _)| id)
            .collect();
        for e in doomed {
            cdg.graph_mut().remove_edge(e);
        }
        let removed = before - cdg.graph().edge_count();
        AcyclicCdg::try_new(cdg, format!("escalating-vc-{}", model.name()), removed)
    }

    /// Derives a multi-VC acyclic CDG as disjoint *virtual networks*: one
    /// VC layer per recipe, each layer broken independently, with no
    /// VC-switching edges (paper §3.7, Figure 3-7).
    ///
    /// # Errors
    ///
    /// Propagates errors from per-layer turn models; also
    /// [`CdgError::NoVirtualChannels`] when `recipes` is empty.
    pub fn virtual_networks(topo: &Topology, recipes: &[LayerRecipe]) -> Result<Self, CdgError> {
        if recipes.is_empty() {
            return Err(CdgError::NoVirtualChannels);
        }
        let z = u8::try_from(recipes.len()).expect("at most 255 layers");
        // Derive each layer independently as a 1-VC acyclic CDG.
        let mut layers = Vec::with_capacity(recipes.len());
        for recipe in recipes {
            let layer = match recipe {
                LayerRecipe::TurnModel(model) => AcyclicCdg::turn_model(topo, 1, model)?,
                LayerRecipe::AdHoc { seed } => AcyclicCdg::ad_hoc(topo, 1, *seed),
                LayerRecipe::RandomOrder { seed } => AcyclicCdg::random_order(topo, 1, *seed),
            };
            layers.push(layer);
        }
        let mut cdg = Cdg::build(topo, z);
        let before = cdg.graph().edge_count();
        let doomed: Vec<_> = cdg
            .graph()
            .edges()
            .filter(|&(_, s, d, _)| {
                let a = *cdg.vertex(s);
                let b = *cdg.vertex(d);
                if a.vc != b.vc {
                    return true; // no VC switching between virtual networks
                }
                let layer = &layers[a.vc.index()];
                let ls = layer.cdg().vertex_id(a.link, VcId(0));
                let ld = layer.cdg().vertex_id(b.link, VcId(0));
                layer.graph().find_edge(ls, ld).is_none()
            })
            .map(|(id, _, _, _)| id)
            .collect();
        for e in doomed {
            cdg.graph_mut().remove_edge(e);
        }
        let removed = before - cdg.graph().edge_count();
        let name = format!(
            "virtual-networks[{}]",
            layers
                .iter()
                .map(|l| l.name().to_owned())
                .collect::<Vec<_>>()
                .join(",")
        );
        AcyclicCdg::try_new(cdg, name, removed)
    }

    /// The underlying CDG.
    pub fn cdg(&self) -> &Cdg {
        &self.cdg
    }

    /// The dependence graph.
    pub fn graph(&self) -> &DiGraph<CdgVertex, ()> {
        self.cdg.graph()
    }

    /// Virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.cdg.vcs()
    }

    /// Human-readable name of the derivation strategy.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many dependence edges the derivation removed from the full CDG.
    pub fn removed_edges(&self) -> usize {
        self.removed
    }

    /// Position of `v` in a topological order of the dependence graph.
    pub fn rank(&self, v: GraphNode) -> u32 {
        self.rank[v.index()]
    }

    /// Vertices usable as the first channel of a route leaving `n`.
    pub fn sources_for(&self, n: NodeId) -> Vec<GraphNode> {
        self.cdg.vertices_leaving(n)
    }

    /// Vertices usable as the last channel of a route entering `n`.
    pub fn sinks_for(&self, n: NodeId) -> Vec<GraphNode> {
        self.cdg.vertices_entering(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turn_model_removes_eight_edges_on_3x3() {
        // Paper Figure 3-3 vs 3-4: the turn model removes 8 edges where ad
        // hoc derivations in the paper removed 12.
        let t = Topology::mesh2d(3, 3);
        for model in [
            TurnModel::west_first(),
            TurnModel::north_last(),
            TurnModel::negative_first(),
        ] {
            let a = AcyclicCdg::turn_model(&t, 1, &model).expect("valid model");
            assert_eq!(a.removed_edges(), 8, "{}", model.name());
            assert!(algo::is_acyclic(a.graph()));
        }
    }

    #[test]
    fn invalid_two_turn_combos_error() {
        // Of the 16 two-turn candidates, the 4 that are not deadlock-free
        // must be rejected by the acyclicity check.
        let t = Topology::mesh2d(4, 4);
        let valid = TurnModel::valid_models(&t).expect("mesh is a grid");
        let mut rejected = 0;
        for model in TurnModel::enumerate_two_turn() {
            if valid.iter().any(|v| v.prohibited() == model.prohibited()) {
                continue;
            }
            let r = AcyclicCdg::turn_model(&t, 1, &model);
            assert!(
                matches!(r, Err(CdgError::StillCyclic { .. })),
                "{} should leave cycles",
                model.name()
            );
            rejected += 1;
        }
        assert_eq!(rejected, 4);
    }

    #[test]
    fn turn_model_on_torus_still_cyclic() {
        // Wraparound channels create intra-dimension cycles the turn model
        // cannot break.
        let t = Topology::torus2d(4, 4);
        let r = AcyclicCdg::turn_model(&t, 1, &TurnModel::west_first());
        assert!(matches!(r, Err(CdgError::StillCyclic { .. })));
    }

    #[test]
    fn ad_hoc_breaks_any_topology() {
        for topo in [Topology::mesh2d(3, 3), Topology::torus2d(3, 3)] {
            let a = AcyclicCdg::ad_hoc(&topo, 1, 42);
            assert!(algo::is_acyclic(a.graph()));
            assert!(a.removed_edges() > 0);
        }
        let ring = Topology::ring(5);
        let a = AcyclicCdg::ad_hoc(&ring, 1, 7);
        assert!(algo::is_acyclic(a.graph()));
        // A ring CDG is two disjoint 5-cycles: exactly 2 removals.
        assert_eq!(a.removed_edges(), 2);
    }

    #[test]
    fn ad_hoc_is_reproducible() {
        let t = Topology::mesh2d(4, 4);
        let a = AcyclicCdg::ad_hoc(&t, 1, 9);
        let b = AcyclicCdg::ad_hoc(&t, 1, 9);
        assert_eq!(a.removed_edges(), b.removed_edges());
        let ea: Vec<_> = a.graph().edges().map(|(_, s, d, _)| (s, d)).collect();
        let eb: Vec<_> = b.graph().edges().map(|(_, s, d, _)| (s, d)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn ad_hoc_removes_more_than_turn_model_typically() {
        // The paper observes ad hoc derivations typically remove more
        // dependences than the turn model (12 vs 8 on the 3x3 mesh).
        let t = Topology::mesh2d(3, 3);
        let tm = AcyclicCdg::turn_model(&t, 1, &TurnModel::west_first()).expect("valid");
        let mut more = 0;
        for seed in 0..10 {
            let ah = AcyclicCdg::ad_hoc(&t, 1, seed);
            if ah.removed_edges() >= tm.removed_edges() {
                more += 1;
            }
        }
        assert!(
            more >= 8,
            "ad hoc should rarely beat the turn model's 8 removals"
        );
    }

    #[test]
    fn ad_hoc_routable_preserves_all_pairs() {
        let t = Topology::mesh2d(4, 4);
        for seed in 0..4u64 {
            let a = AcyclicCdg::ad_hoc_routable(&t, 2, seed).expect("grid");
            assert!(algo::is_acyclic(a.graph()));
            // Every ordered node pair must have a conforming route.
            for s in t.node_ids() {
                let sources = a.sources_for(s);
                let hops = algo::bfs_hops(a.graph(), &sources);
                for d in t.node_ids() {
                    if s == d {
                        continue;
                    }
                    let reachable = a.sinks_for(d).iter().any(|v| hops[v.index()] != usize::MAX);
                    assert!(reachable, "seed {seed}: {s} cannot reach {d}");
                }
            }
        }
    }

    #[test]
    fn ad_hoc_routable_rejects_non_grid() {
        let ring = Topology::ring(5);
        assert_eq!(
            AcyclicCdg::ad_hoc_routable(&ring, 1, 0).unwrap_err(),
            CdgError::NotAGrid
        );
    }

    #[test]
    fn up_down_is_acyclic_on_every_topology_family() {
        for topo in [
            Topology::mesh2d(3, 3),
            Topology::torus2d(4, 4),
            Topology::ring(6),
            bsor_topology::full_mesh(5).expect("valid"),
            bsor_topology::dragonfly(2, 3, 2).expect("valid"),
            bsor_topology::fat_tree(4).expect("valid"),
        ] {
            let a = AcyclicCdg::up_down(&topo, 1).expect("vcs > 0");
            assert!(algo::is_acyclic(a.graph()), "{:?}", topo.kind());
        }
    }

    #[test]
    fn up_down_keeps_all_pairs_routable_on_symmetric_graphs() {
        // The VC-free escape property: even at one VC, climbing the BFS
        // tree and descending reaches every destination.
        for topo in [
            Topology::torus2d(3, 3),
            bsor_topology::fat_tree(4).expect("valid"),
            bsor_topology::dragonfly(2, 3, 2).expect("valid"),
        ] {
            let a = AcyclicCdg::up_down(&topo, 1).expect("vcs > 0");
            for s in topo.node_ids() {
                let hops = algo::bfs_hops(a.graph(), &a.sources_for(s));
                for d in topo.node_ids() {
                    if s == d {
                        continue;
                    }
                    let ok = a.sinks_for(d).iter().any(|v| hops[v.index()] != usize::MAX);
                    assert!(ok, "{:?}: {s} cannot reach {d}", topo.kind());
                }
            }
        }
    }

    #[test]
    fn up_down_needs_a_virtual_channel() {
        let t = Topology::ring(4);
        assert_eq!(
            AcyclicCdg::up_down(&t, 0).unwrap_err(),
            CdgError::NoVirtualChannels
        );
    }

    #[test]
    fn random_order_always_acyclic() {
        let t = Topology::mesh2d(4, 4);
        for seed in 0..5 {
            let a = AcyclicCdg::random_order(&t, 1, seed);
            assert!(algo::is_acyclic(a.graph()));
        }
    }

    #[test]
    fn rank_is_a_topological_order() {
        let t = Topology::mesh2d(4, 4);
        let a = AcyclicCdg::turn_model(&t, 1, &TurnModel::north_last()).expect("valid");
        for (_, s, d, _) in a.graph().edges() {
            assert!(a.rank(s) < a.rank(d));
        }
    }

    #[test]
    fn escalating_vc_allows_all_turns_upward() {
        let t = Topology::mesh2d(3, 3);
        let model = TurnModel::west_first();
        let a = AcyclicCdg::escalating_vc(&t, 2, &model).expect("valid");
        assert!(algo::is_acyclic(a.graph()));
        // Every prohibited-turn pair must still be reachable by climbing.
        let mut climbing_edges = 0;
        let mut descending_edges = 0;
        for (_, s, d, _) in a.graph().edges() {
            let (va, vb) = (a.cdg().vertex(s).vc.0, a.cdg().vertex(d).vc.0);
            if vb > va {
                climbing_edges += 1;
            }
            if vb < va {
                descending_edges += 1;
            }
        }
        assert!(climbing_edges > 0);
        assert_eq!(descending_edges, 0);
    }

    #[test]
    fn escalating_vc_recovers_prohibited_turns() {
        // Under a plain turn model no edge realizes a prohibited turn; the
        // escalating expansion makes every such turn available again by
        // climbing a VC, which is its whole point (paper Figure 3-6(c)).
        let t = Topology::mesh2d(4, 4);
        let model = TurnModel::west_first();
        let esc = AcyclicCdg::escalating_vc(&t, 2, &model).expect("valid");
        let plain = AcyclicCdg::turn_model(&t, 2, &model).expect("valid");
        let count_prohibited = |a: &AcyclicCdg| {
            a.graph()
                .edges()
                .filter(|&(_, s, d, _)| match a.cdg().edge_turn(s, d) {
                    Some((from, to)) => !model.allows(from, to),
                    None => false,
                })
                .count()
        };
        assert_eq!(count_prohibited(&plain), 0);
        assert!(count_prohibited(&esc) > 0);
    }

    #[test]
    fn virtual_networks_disjoint_layers() {
        let t = Topology::mesh2d(3, 3);
        let a = AcyclicCdg::virtual_networks(
            &t,
            &[
                LayerRecipe::TurnModel(TurnModel::north_last()),
                LayerRecipe::AdHoc { seed: 3 },
            ],
        )
        .expect("valid layers");
        assert_eq!(a.vcs(), 2);
        assert!(algo::is_acyclic(a.graph()));
        for (_, s, d, _) in a.graph().edges() {
            assert_eq!(
                a.cdg().vertex(s).vc,
                a.cdg().vertex(d).vc,
                "no VC switching between virtual networks"
            );
        }
    }

    #[test]
    fn virtual_networks_needs_layers() {
        let t = Topology::mesh2d(3, 3);
        assert_eq!(
            AcyclicCdg::virtual_networks(&t, &[]).unwrap_err(),
            CdgError::NoVirtualChannels
        );
    }

    #[test]
    fn sources_and_sinks_exposed() {
        let t = Topology::mesh2d(3, 3);
        let a = AcyclicCdg::turn_model(&t, 2, &TurnModel::west_first()).expect("valid");
        let corner = t.node_at(0, 0).expect("in range");
        // 2 channels x 2 VCs.
        assert_eq!(a.sources_for(corner).len(), 4);
        assert_eq!(a.sinks_for(corner).len(), 4);
    }
}
