//! Dense two-phase primal simplex.
//!
//! The solver accepts a [`Model`] in natural form, internally:
//!
//! 1. substitutes out fixed variables (`lo == hi`),
//! 2. shifts remaining variables to `x' = x - lo >= 0`,
//! 3. adds explicit upper-bound rows for finite upper bounds (unless the
//!    model marked them implied),
//! 4. runs phase 1 with artificial variables to find a basic feasible
//!    point, drives artificials out of the basis, and
//! 5. runs phase 2 on the original objective.
//!
//! Dantzig pricing is used with an automatic switch to Bland's rule when
//! the objective stalls, which guarantees termination on degenerate
//! problems.

use crate::problem::{Cmp, LpError, Model, Solution};

/// Pivot magnitude threshold.
const EPS_PIVOT: f64 = 1e-9;
/// Reduced-cost optimality tolerance.
const EPS_COST: f64 = 1e-9;
/// Phase-1 feasibility tolerance.
const EPS_FEAS: f64 = 1e-7;
/// Iterations of unchanged objective before switching to Bland's rule.
const STALL_LIMIT: usize = 64;

struct Tableau {
    /// Row-major coefficient matrix, `rows x (cols + 1)`, last column = rhs.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Reduced-cost row, length `cols + 1`; last entry is `-objective`.
    cost: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Gauss-Jordan pivot on (row, col), updating the cost row too.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.cols + 1;
        let piv = self.a[row * w + col];
        debug_assert!(piv.abs() > EPS_PIVOT, "pivot too small");
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[row * w + j] *= inv;
        }
        // Exact unit column for numerical hygiene.
        self.a[row * w + col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.a[r * w + col];
            if f != 0.0 {
                for j in 0..w {
                    self.a[r * w + j] -= f * self.a[row * w + j];
                }
                self.a[r * w + col] = 0.0;
            }
        }
        let f = self.cost[col];
        if f != 0.0 {
            for j in 0..w {
                self.cost[j] -= f * self.a[row * w + j];
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// One simplex iteration. `allowed` filters candidate entering columns.
    /// Returns `Ok(true)` if a pivot happened, `Ok(false)` at optimality.
    fn step(&mut self, allowed: &[bool], bland: bool) -> Result<bool, LpError> {
        // Entering column.
        let mut enter: Option<usize> = None;
        if bland {
            for (j, &ok) in allowed.iter().enumerate().take(self.cols) {
                if ok && self.cost[j] < -EPS_COST {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -EPS_COST;
            for (j, &ok) in allowed.iter().enumerate().take(self.cols) {
                if ok && self.cost[j] < best {
                    best = self.cost[j];
                    enter = Some(j);
                }
            }
        }
        let Some(col) = enter else {
            return Ok(false);
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..self.rows {
            let arc = self.at(r, col);
            if arc > EPS_PIVOT {
                let ratio = self.rhs(r) / arc;
                let better = ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leave.is_some_and(|lr| self.basis[r] < self.basis[lr]));
                if leave.is_none() || better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(row) = leave else {
            return Err(LpError::Unbounded);
        };
        self.pivot(row, col);
        Ok(true)
    }

    fn run(&mut self, allowed: &[bool], max_iters: usize) -> Result<(), LpError> {
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        let mut bland = false;
        for _ in 0..max_iters {
            if !self.step(allowed, bland)? {
                return Ok(());
            }
            let obj = -self.cost[self.cols];
            if (last_obj - obj).abs() <= 1e-12 {
                stall += 1;
                if stall >= STALL_LIMIT {
                    bland = true;
                }
            } else {
                stall = 0;
                bland = false;
            }
            last_obj = obj;
        }
        Err(LpError::IterationLimit)
    }
}

/// A prepared constraint row: sparse coefficients over structural
/// columns, the comparison sense, and the shifted right-hand side.
type PreparedRow = (Vec<(usize, f64)>, Cmp, f64);

struct Prepared {
    /// Map model variable index -> structural column (None if fixed).
    col_of_var: Vec<Option<usize>>,
    /// Lower bound shift per model variable.
    shift: Vec<f64>,
    /// Objective constant accumulated from fixed/shifted variables.
    obj_const: f64,
    /// Structural column count.
    n_struct: usize,
    /// Rows as (coeffs over structural cols, cmp, rhs).
    rows: Vec<PreparedRow>,
    /// Objective over structural columns.
    c: Vec<f64>,
}

fn prepare(model: &Model) -> Result<Prepared, LpError> {
    let nv = model.vars.len();
    let mut col_of_var = vec![None; nv];
    let mut shift = vec![0.0; nv];
    let mut obj_const = 0.0;
    let mut n_struct = 0usize;
    for (i, v) in model.vars.iter().enumerate() {
        if !(v.lo.is_finite() && v.lo >= 0.0 && v.hi >= v.lo) {
            return Err(LpError::InvalidModel(format!(
                "variable x{i} has invalid bounds [{}, {}]",
                v.lo, v.hi
            )));
        }
        shift[i] = v.lo;
        obj_const += v.obj * v.lo;
        if v.hi - v.lo > 0.0 {
            col_of_var[i] = Some(n_struct);
            n_struct += 1;
        }
    }
    let mut c = vec![0.0; n_struct];
    for (i, v) in model.vars.iter().enumerate() {
        if let Some(j) = col_of_var[i] {
            c[j] = v.obj;
        }
    }
    let mut rows: Vec<PreparedRow> = Vec::new();
    for con in &model.constraints {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(con.terms.len());
        let mut rhs = con.rhs;
        for &(v, coef) in &con.terms {
            rhs -= coef * shift[v.index()];
            if let Some(j) = col_of_var[v.index()] {
                coeffs.push((j, coef));
            }
        }
        rows.push((coeffs, con.cmp, rhs));
    }
    // Upper-bound rows for finite, non-implied upper bounds.
    for (i, v) in model.vars.iter().enumerate() {
        if let Some(j) = col_of_var[i] {
            let span = v.hi - v.lo;
            if span.is_finite() && !v.ub_implied {
                rows.push((vec![(j, 1.0)], Cmp::Le, span));
            }
        }
    }
    Ok(Prepared {
        col_of_var,
        shift,
        obj_const,
        n_struct,
        rows,
        c,
    })
}

/// Solves the continuous relaxation of `model`.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`],
/// [`LpError::IterationLimit`], or [`LpError::InvalidModel`].
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let prep = prepare(model)?;
    let m = prep.rows.len();
    let n = prep.n_struct;

    if m == 0 {
        // Unconstrained: each variable sits at whichever finite bound
        // minimizes the objective; positive-cost unbounded-above vars sit
        // at lo, negative-cost ones are unbounded.
        let mut values = vec![0.0; model.vars.len()];
        let mut objective = 0.0;
        for (i, v) in model.vars.iter().enumerate() {
            let x = if v.obj >= 0.0 {
                v.lo
            } else if v.hi.is_finite() {
                v.hi
            } else {
                return Err(LpError::Unbounded);
            };
            values[i] = x;
            objective += v.obj * x;
        }
        return Ok(Solution { values, objective });
    }

    // Count auxiliary columns.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for (_, cmp, rhs) in &prep.rows {
        let flipped = *rhs < 0.0;
        let eff = match (cmp, flipped) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Le, true) | (Cmp::Ge, false) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match eff {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
    }
    let cols = n + n_slack + n_art;
    let w = cols + 1;
    let mut a = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    let art_start = n + n_slack;
    let mut next_slack = n;
    let mut next_art = art_start;

    for (r, (coeffs, cmp, rhs)) in prep.rows.iter().enumerate() {
        let sign = if *rhs < 0.0 { -1.0 } else { 1.0 };
        for &(j, coef) in coeffs {
            a[r * w + j] += sign * coef;
        }
        a[r * w + cols] = sign * rhs;
        let eff = match (cmp, sign < 0.0) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Le, true) | (Cmp::Ge, false) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match eff {
            Cmp::Le => {
                a[r * w + next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                a[r * w + next_slack] = -1.0;
                next_slack += 1;
                a[r * w + next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                a[r * w + next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        rows: m,
        cols,
        cost: vec![0.0; w],
        basis,
    };

    let max_iters = 200 * (m + cols) + 20_000;

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        for j in art_start..cols {
            t.cost[j] = 1.0;
        }
        // Make the cost row consistent with the basic artificials.
        for r in 0..m {
            if t.basis[r] >= art_start {
                for j in 0..w {
                    t.cost[j] -= t.a[r * w + j];
                }
            }
        }
        let allowed: Vec<bool> = (0..cols).map(|_| true).collect();
        t.run(&allowed, max_iters)?;
        let phase1_obj = -t.cost[cols];
        if phase1_obj > EPS_FEAS {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining basic artificials out of the basis.
        let mut r = 0;
        let mut live_rows: Vec<bool> = vec![true; m];
        while r < m {
            if live_rows[r] && t.basis[r] >= art_start {
                let mut pivoted = false;
                for j in 0..art_start {
                    if t.at(r, j).abs() > EPS_PIVOT {
                        t.pivot(r, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: zero it so it never constrains again.
                    for j in 0..w {
                        t.a[r * w + j] = 0.0;
                    }
                    live_rows[r] = false;
                }
            }
            r += 1;
        }
    }

    // Phase 2: original objective; artificial columns banned.
    for j in 0..w {
        t.cost[j] = 0.0;
    }
    for (j, &cj) in prep.c.iter().enumerate() {
        t.cost[j] = cj;
    }
    for r in 0..m {
        let b = t.basis[r];
        let cb = if b < n { prep.c[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..w {
                t.cost[j] -= cb * t.a[r * w + j];
            }
        }
    }
    let allowed: Vec<bool> = (0..cols).map(|j| j < art_start).collect();
    t.run(&allowed, max_iters)?;

    // Extract the solution.
    let mut xs = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            xs[b] = t.rhs(r);
        }
    }
    let mut values = vec![0.0; model.vars.len()];
    let mut objective = prep.obj_const;
    for (i, v) in model.vars.iter().enumerate() {
        let x = match prep.col_of_var[i] {
            Some(j) => prep.shift[i] + xs[j],
            None => prep.shift[i],
        };
        values[i] = x;
        objective += v.obj * (x - prep.shift[i]);
    }
    Ok(Solution { values, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Model, VarKind};

    fn cont(m: &mut Model, hi: f64, obj: f64) -> crate::problem::VarId {
        m.add_var(VarKind::Continuous, 0.0, hi, obj)
    }

    #[test]
    fn textbook_production_problem() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (opt 36 at (2,6))
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -3.0);
        let y = cont(&mut m, f64::INFINITY, -5.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&m).expect("feasible bounded LP");
        assert!((s.objective() + 36.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
        assert!((s.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + y s.t. x + y = 2, x - y = 0  => x = y = 1
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        let y = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 1.0).abs() < 1e-7);
        assert!((s.value(y) - 1.0).abs() < 1e-7);
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 3  => (7,3)? cost 2*7+3*3=23 vs x=10,y=0 cost 20.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 2.0);
        let y = cont(&mut m, f64::INFINITY, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.objective() - 20.0).abs() < 1e-7);
        assert!((s.value(x) - 10.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -1.0);
        let y = cont(&mut m, f64::INFINITY, 0.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn respects_upper_bounds() {
        // min -x, x <= 2.5 via bound only.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.0, 2.5, -1.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 2.5).abs() < 1e-7);
    }

    #[test]
    fn respects_lower_bounds_via_shift() {
        // min x with x in [1.5, 4]
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 1.5, 4.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 1.5).abs() < 1e-7);
        assert!((s.objective() - 1.5).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_substituted() {
        // x fixed at 2; min y s.t. y >= 3x => y = 6.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 2.0, 2.0, 0.0);
        let y = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(y, 1.0), (x, -3.0)], Cmp::Ge, 0.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -0.75);
        let y = cont(&mut m, f64::INFINITY, 150.0);
        let z = cont(&mut m, f64::INFINITY, -0.02);
        let u = cont(&mut m, f64::INFINITY, 6.0);
        // Beale's cycling example.
        m.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (u, 9.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (u, 3.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let s = solve(&m).expect("Beale example has optimum -0.05");
        assert!((s.objective() + 0.05).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_handled() {
        // Duplicate equality rows create basic artificials at zero.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        let y = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = solve(&m).expect("feasible despite redundancy");
        assert!((s.value(x) + s.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // -x <= -3  (i.e. x >= 3), min x.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, -3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn no_constraints_uses_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.5, 2.0, 3.0);
        let y = m.add_var(VarKind::Continuous, 0.0, 7.0, -1.0);
        let s = solve(&m).expect("bounded by variable bounds");
        assert!((s.value(x) - 0.5).abs() < 1e-9);
        assert!((s.value(y) - 7.0).abs() < 1e-9);
        assert!((s.objective() - (1.5 - 7.0)).abs() < 1e-9);
    }

    #[test]
    fn minimax_linearization_pattern() {
        // The BSOR objective shape: min U s.t. loads <= U.
        // Loads: l1 = 3a, l2 = 3(1-a) for a in [0,1]: optimum U = 1.5.
        let mut m = Model::minimize();
        let u = cont(&mut m, f64::INFINITY, 1.0);
        let a = m.add_var(VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_constraint(vec![(a, 3.0), (u, -1.0)], Cmp::Le, 0.0);
        m.add_constraint(vec![(a, -3.0), (u, -1.0)], Cmp::Le, -3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.objective() - 1.5).abs() < 1e-7);
        assert!((s.value(a) - 0.5).abs() < 1e-7);
    }
}
