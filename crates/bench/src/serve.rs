//! The `bsor-serve` plan service: a long-lived, line-delimited JSON
//! request/response protocol over the [`Planner`]/[`PlanCache`] split.
//!
//! The paper's BSOR flow is offline — solve once per application, then
//! route obliviously at runtime — which makes the production shape a
//! *plan server*: many tenants concurrently requesting plans and
//! evaluations for overlapping `(topology, workload, algorithm, vcs)`
//! keys, with link-failure deltas arriving as incremental
//! [`PlanCache::invalidate`] calls instead of cache flushes.
//!
//! # Protocol
//!
//! One JSON object per line, on stdin/stdout or a TCP connection
//! (blank lines are ignored). Every request carries an `op` and an
//! optional `id` the response echoes verbatim:
//!
//! ```text
//! request    = { "id"?: any, "op": "plan" | "evaluate" | "invalidate" | "stats", ... }
//! response   = { "id": any, "ok": true,  "result": object }
//!            | { "id": any, "ok": false, "error": { "code": string, "message": string } }
//!
//! plan       = { "op": "plan", "topology"?: name | spec, "width"?: int, "height"?: int,
//!                "workload": spec, "algorithm": name, "vcs"?: int }
//! evaluate   = plan fields + { "op": "evaluate", "rate": number,
//!                "backend"?: "static" | "sim", "warmup"?: int, "measurement"?: int,
//!                "packet_len"?: int, "seed"?: int }
//! invalidate = { "op": "invalidate", "links": [[src, dst], ...] }
//! stats      = { "op": "stats" }
//! ```
//!
//! Topology names, workload specs and algorithm names resolve through
//! the same [`SweepRegistries`] the sweep CLI uses (`bsor-sweep
//! --list-*` enumerates them). A `topology` value containing `:` is a
//! full registry spec (`dragonfly:2,3,2`, `fattree:4`, `fullmesh:8`,
//! `file:<path>`) resolved through `TopologyRegistry::build_spec`,
//! ignoring `width`/`height`; a bare name keeps the historical
//! name + dims path. Malformed input of any kind — bad JSON,
//! missing fields, unknown names — produces a typed [`ServeError`]
//! response on the same line, never a panic and never a dropped
//! connection.
//!
//! # Determinism contract
//!
//! With timings disabled ([`ServeConfig::timings`] off, `--no-timings`
//! on the binary), responses are a pure function of the request stream:
//! same requests + same seeds ⇒ byte-identical response stream, across
//! thread counts and machines. Wall-clock fields (`elapsed_ms`,
//! `solve_ms_*`) are reported as `0.0` in that mode rather than
//! omitted, so the schema never shifts.
//!
//! # Error codes
//!
//! Protocol-level failures use `bad-json`, `bad-request` and
//! `unknown-op`; pipeline failures carry the stable
//! [`bsor_sim::Error::code`] vocabulary (`select-failed`, `deadlock`,
//! `unknown-workload`, …).

use crate::json::{Json, JsonParseError};
use crate::sweep::SweepRegistries;
use bsor_sim::{
    EvalPoint, Evaluation, Evaluator, PlanCache, PlanCacheConfig, Planner, RoutePlan, Scenario,
    SimConfig, SimEvaluator, StaticMclEvaluator,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How a [`PlanService`] is sized and reported.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Plan-cache sizing (shards, LRU plan/byte budgets).
    pub cache: PlanCacheConfig,
    /// Report wall-clock fields. Off, every timing field is `0.0` and
    /// the response stream is byte-deterministic for a fixed request
    /// stream (the serve determinism contract).
    pub timings: bool,
    /// Log a one-line cache/stats summary to stderr every N requests
    /// (`0` disables the periodic line).
    pub stats_every: u64,
    /// Compile served plans' router tables into the interval-compressed
    /// representation (`bsor_routing::CompactTables`). Responses are
    /// behaviorally identical either way; the per-plan `table_bytes`
    /// figure (and the cache's byte accounting) shrinks.
    pub compact_tables: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache: PlanCacheConfig::new(),
            timings: true,
            stats_every: 0,
            compact_tables: false,
        }
    }
}

/// Why a request could not be served.
///
/// [`ServeError::code`] is the stable `error.code` of the response:
/// protocol-level failures map to `bad-json` / `bad-request` /
/// `unknown-op`, pipeline failures defer to the unified
/// [`bsor_sim::Error::code`] vocabulary.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The line was not valid JSON.
    BadJson(JsonParseError),
    /// The request was structurally wrong (not an object, missing or
    /// mistyped fields, unbuildable topology).
    BadRequest(String),
    /// The `op` is not one of `plan`/`evaluate`/`invalidate`/`stats`.
    UnknownOp(String),
    /// The scenario → plan → evaluate pipeline failed.
    Pipeline(bsor_sim::Error),
}

impl ServeError {
    /// The stable machine-readable code for the JSON `error.code`
    /// field.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadJson(_) => "bad-json",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::UnknownOp(_) => "unknown-op",
            ServeError::Pipeline(e) => e.code(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadJson(e) => write!(f, "{e}"),
            ServeError::BadRequest(msg) => write!(f, "{msg}"),
            ServeError::UnknownOp(op) => write!(
                f,
                "unknown op '{op}' (expected plan, evaluate, invalidate or stats)"
            ),
            ServeError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JsonParseError> for ServeError {
    fn from(e: JsonParseError) -> Self {
        ServeError::BadJson(e)
    }
}

impl From<bsor_sim::Error> for ServeError {
    fn from(e: bsor_sim::Error) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<bsor_sim::PlanError> for ServeError {
    fn from(e: bsor_sim::PlanError) -> Self {
        ServeError::Pipeline(e.into())
    }
}

impl From<bsor_sim::EvalError> for ServeError {
    fn from(e: bsor_sim::EvalError) -> Self {
        ServeError::Pipeline(e.into())
    }
}

impl From<bsor_sim::ExperimentError> for ServeError {
    fn from(e: bsor_sim::ExperimentError) -> Self {
        ServeError::Pipeline(e.into())
    }
}

impl From<bsor_workloads::WorkloadError> for ServeError {
    fn from(e: bsor_workloads::WorkloadError) -> Self {
        ServeError::Pipeline(e.into())
    }
}

/// Scenario memo key: the request fields that determine a scenario.
type ScenarioKey = (String, u16, u16, String, u8);

/// Scenarios the service keeps before evicting the memo wholesale (the
/// memo only avoids re-deriving CDGs for hot keys; correctness never
/// depends on it).
const SCENARIO_MEMO_CAP: usize = 1024;

/// The serve-side state: registries, a [`Planner`] over a sharded
/// single-flight [`PlanCache`], and a scenario memo.
///
/// One `PlanService` is shared (via [`Arc`]) by every connection of a
/// server; [`PlanService::handle_line`] is safe to call concurrently.
pub struct PlanService {
    regs: SweepRegistries,
    planner: Planner,
    cache: Arc<PlanCache>,
    timings: bool,
    stats_every: u64,
    requests: AtomicU64,
    scenarios: Mutex<HashMap<ScenarioKey, Arc<Scenario>>>,
}

impl PlanService {
    /// A service over the standard registries.
    pub fn new(config: ServeConfig) -> PlanService {
        PlanService::with_registries(config, SweepRegistries::standard())
    }

    /// A service over custom registries.
    pub fn with_registries(config: ServeConfig, regs: SweepRegistries) -> PlanService {
        let cache = PlanCache::shared_with(config.cache);
        PlanService {
            regs,
            planner: Planner::new()
                .with_cache(cache.clone())
                .with_compact_tables(config.compact_tables),
            cache,
            timings: config.timings,
            stats_every: config.stats_every,
            requests: AtomicU64::new(0),
            scenarios: Mutex::new(HashMap::new()),
        }
    }

    /// The shared plan cache behind the service.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The planner behind the service.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Requests handled so far (any op, including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Handles one protocol line and renders the one-line response.
    /// Never panics: malformed input becomes a typed error response.
    pub fn handle_line(&self, line: &str) -> String {
        let served = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let parsed = Json::parse(line.trim());
        let id = parsed
            .as_ref()
            .ok()
            .and_then(|req| req.get("id").cloned())
            .unwrap_or(Json::Null);
        let outcome = parsed
            .map_err(ServeError::from)
            .and_then(|req| self.handle(&req));
        let response = match outcome {
            Ok(result) => Json::object(vec![
                ("id", id),
                ("ok", Json::Bool(true)),
                ("result", result),
            ]),
            Err(e) => Json::object(vec![
                ("id", id),
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::object(vec![
                        ("code", Json::from(e.code())),
                        ("message", Json::from(e.to_string())),
                    ]),
                ),
            ]),
        };
        if self.stats_every > 0 && served % self.stats_every == 0 {
            let s = self.cache.stats();
            eprintln!(
                "bsor-serve: {served} requests, {} plans ({} bytes), {} hits / {} misses / {} \
                 dedup waits, {} solves, {} lru + {} invalidated evictions",
                s.plans,
                s.bytes,
                s.hits,
                s.misses,
                s.dedup_waits,
                s.solves,
                s.evicted_lru,
                s.evicted_invalidated
            );
        }
        response.compact()
    }

    /// Dispatches a parsed request to its op handler and returns the
    /// `result` payload.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; the caller renders it into the error
    /// response envelope.
    pub fn handle(&self, request: &Json) -> Result<Json, ServeError> {
        if !matches!(request, Json::Object(_)) {
            return Err(ServeError::BadRequest(
                "request must be a JSON object".to_owned(),
            ));
        }
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string field 'op'".to_owned()))?;
        match op {
            "plan" => self.op_plan(request),
            "evaluate" => self.op_evaluate(request),
            "invalidate" => self.op_invalidate(request),
            "stats" => Ok(self.op_stats()),
            other => Err(ServeError::UnknownOp(other.to_owned())),
        }
    }

    /// Resolves the scenario a plan/evaluate request names, through the
    /// memo.
    fn scenario(&self, request: &Json) -> Result<Arc<Scenario>, ServeError> {
        let topology = opt_str(request, "topology")?.unwrap_or("mesh").to_owned();
        let width = opt_dim(request, "width")?.unwrap_or(8);
        let height = opt_dim(request, "height")?.unwrap_or(8);
        let workload = req_str(request, "workload")?.to_owned();
        let vcs = opt_u8(request, "vcs")?.unwrap_or(2);
        let key: ScenarioKey = (topology, width, height, workload, vcs);
        if let Some(hit) = self.scenarios.lock().expect("memo poisoned").get(&key) {
            return Ok(hit.clone());
        }
        let topo = if key.0.contains(':') {
            self.regs.topologies.build_spec(&key.0)
        } else {
            self.regs.topologies.build(&key.0, key.1, key.2)
        }
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let workload = self.regs.workloads.build(&topo, &key.3)?;
        let scenario = Arc::new(
            Scenario::builder(topo, workload.flows)
                .named(&key.3)
                .vcs(key.4)
                .build()?,
        );
        let mut memo = self.scenarios.lock().expect("memo poisoned");
        if memo.len() >= SCENARIO_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, scenario.clone());
        Ok(scenario)
    }

    /// Plans the request's scenario/algorithm pair (single-flight
    /// through the shared cache).
    fn plan(&self, request: &Json) -> Result<(Arc<RoutePlan>, Arc<Scenario>), ServeError> {
        let scenario = self.scenario(request)?;
        let name = req_str(request, "algorithm")?;
        let algorithm = self
            .regs
            .algorithms
            .get(name)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown algorithm '{name}'")))?;
        let plan = self.planner.plan(&scenario, algorithm)?;
        Ok((plan, scenario))
    }

    fn op_plan(&self, request: &Json) -> Result<Json, ServeError> {
        let started = Instant::now();
        let (plan, _scenario) = self.plan(request)?;
        Ok(Json::object(vec![
            ("plan", Json::from(plan.id().to_string())),
            ("algorithm", Json::from(plan.algorithm())),
            ("predicted_mcl", Json::from(plan.predicted_mcl())),
            ("flows", Json::from(plan.flows().len())),
            ("links", Json::from(plan.topology().num_links())),
            ("vcs", Json::from(u64::from(plan.vcs()))),
            ("table_bytes", Json::from(plan.table_bytes() as u64)),
            ("certified", Json::Bool(true)),
            ("elapsed_ms", self.elapsed_ms(started)),
        ]))
    }

    fn op_evaluate(&self, request: &Json) -> Result<Json, ServeError> {
        let started = Instant::now();
        let rate = request
            .get("rate")
            .and_then(Json::as_f64)
            .ok_or_else(|| ServeError::BadRequest("missing number field 'rate'".to_owned()))?;
        let backend = opt_str(request, "backend")?.unwrap_or("static");
        let (plan, _scenario) = self.plan(request)?;
        let mut config = SimConfig::new(plan.vcs())
            .with_warmup(opt_u64(request, "warmup")?.unwrap_or(200))
            .with_measurement(opt_u64(request, "measurement")?.unwrap_or(1_000));
        if let Some(packet_len) = opt_u64(request, "packet_len")? {
            let packet_len = usize::try_from(packet_len)
                .map_err(|_| ServeError::BadRequest("'packet_len' out of range".to_owned()))?;
            config = config.with_packet_len(packet_len);
        }
        if let Some(seed) = opt_u64(request, "seed")? {
            config = config.with_seed(seed);
        }
        let point = EvalPoint::new(rate, config);
        let evaluation = match backend {
            "static" => StaticMclEvaluator::new().evaluate(&plan, &point)?,
            "sim" => SimEvaluator::new().evaluate(&plan, &point)?,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown backend '{other}' (expected 'static' or 'sim')"
                )))
            }
        };
        Ok(self.evaluation_json(&plan, &evaluation, started))
    }

    fn evaluation_json(&self, plan: &RoutePlan, ev: &Evaluation, started: Instant) -> Json {
        let opt_u = |v: Option<u64>| v.map(Json::UInt).unwrap_or(Json::Null);
        let opt_f = |v: Option<f64>| v.map(Json::Float).unwrap_or(Json::Null);
        Json::object(vec![
            ("plan", Json::from(plan.id().to_string())),
            ("backend", Json::from(ev.backend)),
            ("rate", Json::from(ev.rate)),
            ("offered", Json::from(ev.offered)),
            ("throughput", Json::from(ev.throughput)),
            ("mean_latency", opt_f(ev.mean_latency)),
            ("p50_latency", opt_u(ev.p50_latency)),
            ("p95_latency", opt_u(ev.p95_latency)),
            ("p99_latency", opt_u(ev.p99_latency)),
            ("max_latency", Json::from(ev.max_latency)),
            ("max_channel_load", Json::from(ev.max_channel_load)),
            ("predicted_mcl", Json::from(ev.predicted_mcl)),
            ("generated", Json::from(ev.generated)),
            ("delivered", Json::from(ev.delivered)),
            ("deadlocked", Json::Bool(ev.deadlocked)),
            ("cycles", Json::from(ev.cycles)),
            ("elapsed_ms", self.elapsed_ms(started)),
        ])
    }

    fn op_invalidate(&self, request: &Json) -> Result<Json, ServeError> {
        let links = request
            .get("links")
            .and_then(Json::as_array)
            .ok_or_else(|| {
                ServeError::BadRequest("missing array field 'links' of [src, dst] pairs".to_owned())
            })?;
        let mut delta = Vec::with_capacity(links.len());
        for pair in links {
            let parsed = pair.as_array().and_then(|p| match p {
                [a, b] => Some((a.as_u64()?, b.as_u64()?)),
                _ => None,
            });
            let (a, b) = parsed.ok_or_else(|| {
                ServeError::BadRequest(
                    "'links' entries must be [src, dst] node-id pairs".to_owned(),
                )
            })?;
            let narrow = |v: u64| {
                u32::try_from(v).map_err(|_| {
                    ServeError::BadRequest(format!("link [{a}, {b}] has a node id over u32::MAX"))
                })
            };
            delta.push((narrow(a)?, narrow(b)?));
        }
        // Ids past every cached topology's node count cannot name a
        // real link, so the delta is a client error, not a no-op.
        if let Some(nodes) = self.cache.max_node_count() {
            for &(a, b) in &delta {
                if a as usize >= nodes || b as usize >= nodes {
                    return Err(ServeError::BadRequest(format!(
                        "link [{a}, {b}] is out of range: cached topologies have at most \
                         {nodes} nodes (ids 0..={})",
                        nodes - 1
                    )));
                }
            }
        }
        let outcome = self.cache.invalidate(&delta);
        Ok(Json::object(vec![
            ("examined", Json::from(outcome.examined)),
            ("evicted", Json::from(outcome.evicted)),
            ("recertified", Json::from(outcome.recertified)),
        ]))
    }

    fn op_stats(&self) -> Json {
        let s = self.cache.stats();
        let ms = |ns: u64| {
            if self.timings {
                Json::Float(ns as f64 / 1e6)
            } else {
                Json::Float(0.0)
            }
        };
        Json::object(vec![
            ("requests", Json::from(self.requests())),
            ("hits", Json::from(s.hits)),
            ("misses", Json::from(s.misses)),
            ("dedup_waits", Json::from(s.dedup_waits)),
            ("inserts", Json::from(s.inserts)),
            ("evicted_lru", Json::from(s.evicted_lru)),
            ("evicted_invalidated", Json::from(s.evicted_invalidated)),
            ("recertified", Json::from(s.recertified)),
            ("in_flight", Json::from(s.in_flight)),
            ("solves", Json::from(s.solves)),
            ("plans", Json::from(s.plans)),
            ("bytes", Json::from(s.bytes)),
            ("table_bytes", Json::from(s.table_bytes)),
            ("solve_ms_total", ms(s.solve_ns_total)),
            ("solve_ms_max", ms(s.solve_ns_max)),
        ])
    }

    fn elapsed_ms(&self, started: Instant) -> Json {
        if self.timings {
            Json::Float(started.elapsed().as_secs_f64() * 1e3)
        } else {
            Json::Float(0.0)
        }
    }
}

/// Serves line-delimited requests from `reader` to `writer` until EOF
/// (the stdin/stdout mode of `bsor-serve`; blank lines are skipped).
/// Responses are flushed per line so a pipe can converse.
///
/// # Errors
///
/// Only I/O errors on the transport — protocol problems are answered
/// in-band.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &PlanService,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{}", service.handle_line(&line))?;
        writer.flush()?;
    }
    Ok(())
}

/// Accepts TCP connections forever, one thread per connection, each
/// speaking the same line protocol over one shared service. Per-
/// connection I/O errors drop that connection only.
///
/// # Errors
///
/// Only fatal accept-loop errors.
pub fn serve_tcp(service: Arc<PlanService>, listener: TcpListener) -> std::io::Result<()> {
    loop {
        let (stream, _addr) = listener.accept()?;
        let service = service.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(&service, stream);
        });
    }
}

fn serve_connection(service: &PlanService, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

fn req_str<'a>(request: &'a Json, field: &str) -> Result<&'a str, ServeError> {
    opt_str(request, field)?
        .ok_or_else(|| ServeError::BadRequest(format!("missing string field '{field}'")))
}

fn opt_str<'a>(request: &'a Json, field: &str) -> Result<Option<&'a str>, ServeError> {
    match request.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ServeError::BadRequest(format!("field '{field}' must be a string"))),
    }
}

fn opt_u64(request: &Json, field: &str) -> Result<Option<u64>, ServeError> {
    match request.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("field '{field}' must be a non-negative integer"))
        }),
    }
}

fn opt_dim(request: &Json, field: &str) -> Result<Option<u16>, ServeError> {
    match opt_u64(request, field)? {
        None => Ok(None),
        Some(v) => u16::try_from(v)
            .map(Some)
            .map_err(|_| ServeError::BadRequest(format!("field '{field}' out of range"))),
    }
}

fn opt_u8(request: &Json, field: &str) -> Result<Option<u8>, ServeError> {
    match opt_u64(request, field)? {
        None => Ok(None),
        Some(v) => u8::try_from(v)
            .map(Some)
            .map_err(|_| ServeError::BadRequest(format!("field '{field}' out of range"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> PlanService {
        PlanService::new(ServeConfig {
            timings: false,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn plan_op_round_trips_and_caches() {
        let svc = service();
        let req =
            r#"{"id":1,"op":"plan","workload":"transpose","algorithm":"xy","width":4,"height":4}"#;
        let a = svc.handle_line(req);
        let b = svc.handle_line(req);
        assert_eq!(a, b, "a cache hit answers identically");
        let parsed = Json::parse(&a).expect("valid response");
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        let result = parsed.get("result").expect("result");
        assert_eq!(
            result.get("plan").and_then(Json::as_str).map(str::len),
            Some(16),
            "content address is 16 hex digits"
        );
        assert_eq!(svc.cache().stats().solves, 1, "one solve, one hit");
        assert_eq!(svc.cache().stats().hits, 1);
    }

    #[test]
    fn malformed_lines_answer_typed_errors_not_panics() {
        let svc = service();
        for (line, code) in [
            ("{not json", "bad-json"),
            ("[1,2,3]", "bad-request"),
            (r#"{"op":"warp"}"#, "unknown-op"),
            (r#"{"op":"plan","workload":"transpose"}"#, "bad-request"),
            (
                r#"{"op":"plan","workload":"nope","algorithm":"xy"}"#,
                "unknown-workload",
            ),
            (
                r#"{"op":"plan","workload":"hotspot:lots","algorithm":"xy"}"#,
                "bad-workload-spec",
            ),
            (
                r#"{"op":"plan","workload":"transpose","algorithm":"zigzag"}"#,
                "bad-request",
            ),
            (
                r#"{"op":"plan","topology":"hypercube","width":4,"height":2,"workload":"uniform-random","algorithm":"xy"}"#,
                "unsupported-topology",
            ),
            (
                r#"{"op":"evaluate","workload":"transpose","algorithm":"xy"}"#,
                "bad-request",
            ),
            (r#"{"op":"invalidate"}"#, "bad-request"),
            (r#"{"op":"invalidate","links":[[0]]}"#, "bad-request"),
            (
                r#"{"op":"invalidate","links":[[0,4294967296]]}"#,
                "bad-request",
            ),
        ] {
            let response = Json::parse(&svc.handle_line(line)).expect("valid response JSON");
            assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{line}");
            assert_eq!(
                response
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some(code),
                "{line}"
            );
        }
    }

    #[test]
    fn evaluate_backends_share_the_plan() {
        let svc = service();
        let static_req = r#"{"op":"evaluate","workload":"transpose","algorithm":"xy","width":4,"height":4,"rate":0.1}"#;
        let sim_req = r#"{"op":"evaluate","workload":"transpose","algorithm":"xy","width":4,"height":4,"rate":0.1,"backend":"sim","warmup":100,"measurement":500}"#;
        let st = Json::parse(&svc.handle_line(static_req)).expect("valid");
        let sim = Json::parse(&svc.handle_line(sim_req)).expect("valid");
        assert_eq!(st.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(sim.get("ok"), Some(&Json::Bool(true)));
        let (st, sim) = (st.get("result").unwrap(), sim.get("result").unwrap());
        assert_eq!(st.get("backend").and_then(Json::as_str), Some("static-mcl"));
        assert_eq!(sim.get("backend").and_then(Json::as_str), Some("sim"));
        assert_eq!(st.get("plan"), sim.get("plan"), "one plan id serves both");
        assert_eq!(st.get("predicted_mcl"), sim.get("predicted_mcl"));
        assert!(sim.get("delivered").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(
            svc.cache().stats().solves,
            1,
            "second backend reused the plan"
        );
    }

    #[test]
    fn invalidate_evicts_only_overlapping_plans() {
        let svc = service();
        // transpose on 4x4 routes demand broadly; neighbor stays local.
        for (workload, algo) in [("transpose", "xy"), ("transpose", "yx"), ("neighbor", "xy")] {
            let line = format!(
                r#"{{"op":"plan","workload":"{workload}","algorithm":"{algo}","width":4,"height":4}}"#
            );
            let response = Json::parse(&svc.handle_line(&line)).expect("valid");
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        }
        assert_eq!(svc.cache().len(), 3);
        // Node 0 -> node 1 is the mesh's first horizontal hop: XY
        // transpose routing crosses it, neighbor(0->1) uses it too, but
        // YX transpose goes vertical first — so YX survives via
        // re-certification.
        let response =
            Json::parse(&svc.handle_line(r#"{"op":"invalidate","links":[[0,1]]}"#)).expect("ok");
        let result = response.get("result").expect("result");
        let evicted = result.get("evicted").and_then(Json::as_u64).unwrap();
        let recertified = result.get("recertified").and_then(Json::as_u64).unwrap();
        let examined = result.get("examined").and_then(Json::as_u64).unwrap();
        assert_eq!(examined, 3, "all three plans contain the link");
        assert!(evicted >= 1, "at least the users of 0->1 go");
        assert_eq!(evicted + recertified, examined);
        assert_eq!(svc.cache().len(), 3 - evicted as usize);
    }

    #[test]
    fn stats_op_reports_solves_and_determinism_zeroes_timings() {
        let svc = service();
        let plan = r#"{"op":"plan","workload":"transpose","algorithm":"xy","width":4,"height":4}"#;
        svc.handle_line(plan);
        svc.handle_line(plan);
        let response = Json::parse(&svc.handle_line(r#"{"id":"s","op":"stats"}"#)).expect("ok");
        assert_eq!(response.get("id").and_then(Json::as_str), Some("s"));
        let result = response.get("result").expect("result");
        assert_eq!(result.get("solves").and_then(Json::as_u64), Some(1));
        assert_eq!(result.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(result.get("plans").and_then(Json::as_u64), Some(1));
        assert_eq!(result.get("requests").and_then(Json::as_u64), Some(3));
        assert_eq!(result.get("solve_ms_total"), Some(&Json::Float(0.0)));
        assert_eq!(result.get("solve_ms_max"), Some(&Json::Float(0.0)));
    }

    #[test]
    fn compact_service_shrinks_table_bytes_without_changing_answers() {
        let dense = service();
        let compact = PlanService::new(ServeConfig {
            timings: false,
            compact_tables: true,
            ..ServeConfig::default()
        });
        let plan_req =
            r#"{"op":"plan","workload":"transpose","algorithm":"xy","width":4,"height":4}"#;
        let d = Json::parse(&dense.handle_line(plan_req)).expect("valid");
        let c = Json::parse(&compact.handle_line(plan_req)).expect("valid");
        let bytes = |r: &Json| {
            r.get("result")
                .and_then(|res| res.get("table_bytes"))
                .and_then(Json::as_u64)
                .expect("plan result carries table_bytes")
        };
        assert!(
            bytes(&c) < bytes(&d),
            "compact {} vs dense {}",
            bytes(&c),
            bytes(&d)
        );
        // Representation never enters the plan identity: both services
        // hand back the same content address.
        assert_eq!(
            d.get("result").unwrap().get("plan"),
            c.get("result").unwrap().get("plan")
        );
        // Evaluation through the compact tables is byte-identical.
        let eval_req = r#"{"op":"evaluate","workload":"transpose","algorithm":"xy","width":4,"height":4,"rate":0.2,"backend":"sim","warmup":100,"measurement":500}"#;
        assert_eq!(dense.handle_line(eval_req), compact.handle_line(eval_req));
        // And the cache's measured footprint reflects the compression.
        let stats = |svc: &PlanService| {
            Json::parse(&svc.handle_line(r#"{"op":"stats"}"#))
                .expect("valid")
                .get("result")
                .and_then(|r| r.get("table_bytes"))
                .and_then(Json::as_u64)
                .expect("stats carry table_bytes")
        };
        assert!(stats(&compact) < stats(&dense));
    }

    #[test]
    fn serve_lines_skips_blanks_and_answers_in_order() {
        let svc = service();
        let input = "\n{\"id\":1,\"op\":\"stats\"}\n   \n{\"id\":2,\"op\":\"stats\"}\n";
        let mut out = Vec::new();
        serve_lines(&svc, input.as_bytes(), &mut out).expect("io");
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"id\":1,"));
        assert!(lines[1].starts_with("{\"id\":2,"));
    }
}
