//! Arbitrary-graph topologies: an edge-list / topology-zoo-style file
//! loader plus parametric dragonfly, k-ary fat-tree and full-mesh
//! generators.
//!
//! The paper stresses that BSOR is defined over arbitrary channel
//! dependence graphs; this module supplies the non-grid substrates. All
//! constructors here produce [`Topology`] values whose node ids follow
//! first-appearance (loader) or tier/group-major (generators) order,
//! with display coordinates laid out on a single row so `node_at(i, 0)`
//! agrees with `NodeId(i)`.
//!
//! # Topology file grammar
//!
//! Line-oriented, whitespace-separated tokens, `#` starts a comment
//! (whole-line or trailing):
//!
//! ```text
//! # nodes may be declared up front (optional; links auto-declare)
//! node <name>
//! # undirected link: one channel in each direction
//! link <a> <b> [capacity-MB/s]
//! # directed link: a single channel a -> b
//! dlink <a> <b> [capacity-MB/s]
//! ```
//!
//! Node names are arbitrary non-whitespace tokens; ids are assigned in
//! first-appearance order. Rejected with a typed
//! [`TopologyFileError`] (never a panic): self-loops, duplicate
//! channels, non-positive or non-finite capacities, fewer than 2 or
//! more than 65535 nodes, unknown keywords, malformed lines, and graphs
//! that are not strongly connected (every routing question must have an
//! answer).
//!
//! ```
//! use bsor_topology::graph::parse_topology_file;
//!
//! // A 3-node triangle WAN.
//! let text = "link a b 2000\nlink b c\nlink c a  # trailing comments work\n";
//! let topo = parse_topology_file("triangle", text).expect("valid");
//! assert_eq!(topo.num_nodes(), 3);
//! assert_eq!(topo.num_links(), 6);
//! ```

use crate::geometry::Coord;
use crate::net::{NodeId, Topology, TopologyKind};
use crate::registry::TopologyError;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Why a topology file failed to load: I/O, a malformed line, or a
/// structurally invalid graph. Every variant carries the offending path
/// (and line, for parse errors) so CLI surfaces can point at the exact
/// problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyFileError {
    /// The file could not be read.
    Io {
        /// Path that failed to open or read.
        path: String,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// A line failed to parse.
    Parse {
        /// Path (or label) of the offending file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// The parsed graph is structurally unusable as a topology.
    Invalid {
        /// Path (or label) of the offending file.
        path: String,
        /// Which structural constraint failed.
        message: String,
    },
}

impl fmt::Display for TopologyFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyFileError::Io { path, message } => {
                write!(f, "topology file '{path}': {message}")
            }
            TopologyFileError::Parse {
                path,
                line,
                message,
            } => write!(f, "topology file '{path}' line {line}: {message}"),
            TopologyFileError::Invalid { path, message } => {
                write!(f, "topology file '{path}': {message}")
            }
        }
    }
}

impl Error for TopologyFileError {}

/// Loads an edge-list topology file from disk (see the [module
/// docs](self) for the grammar).
///
/// # Errors
///
/// [`TopologyFileError::Io`] when the file cannot be read, otherwise
/// whatever [`parse_topology_file`] reports. Never panics.
pub fn load_topology_file(path: &str) -> Result<Topology, TopologyFileError> {
    let text = std::fs::read_to_string(path).map_err(|e| TopologyFileError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    parse_topology_file(path, &text)
}

/// Parses topology-file `text`, labeling errors with `path` (which need
/// not exist on disk — tests and in-memory callers pass any label).
///
/// # Errors
///
/// [`TopologyFileError::Parse`] for malformed lines,
/// [`TopologyFileError::Invalid`] for structurally unusable graphs
/// (too few/many nodes, duplicate channels, not strongly connected).
pub fn parse_topology_file(path: &str, text: &str) -> Result<Topology, TopologyFileError> {
    let parse = |line: usize, message: String| TopologyFileError::Parse {
        path: path.to_owned(),
        line,
        message,
    };
    let invalid = |message: String| TopologyFileError::Invalid {
        path: path.to_owned(),
        message,
    };

    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let intern = |name: &str, ids: &mut HashMap<String, u32>, order: &mut Vec<String>| -> u32 {
        if let Some(&id) = ids.get(name) {
            return id;
        }
        let id = order.len() as u32;
        ids.insert(name.to_owned(), id);
        order.push(name.to_owned());
        id
    };
    // (src, dst, capacity override) in file order.
    let mut channels: Vec<(u32, u32, Option<f64>)> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "node" => {
                if tokens.len() != 2 {
                    return Err(parse(lineno, "'node' takes exactly one name".to_owned()));
                }
                intern(tokens[1], &mut ids, &mut order);
            }
            kw @ ("link" | "dlink") => {
                if !(3..=4).contains(&tokens.len()) {
                    return Err(parse(
                        lineno,
                        format!("'{kw}' takes two node names and an optional capacity"),
                    ));
                }
                let capacity = match tokens.get(3) {
                    None => None,
                    Some(raw) => {
                        let c: f64 = raw.parse().map_err(|_| {
                            parse(lineno, format!("capacity '{raw}' is not a number"))
                        })?;
                        if !c.is_finite() || c <= 0.0 {
                            return Err(parse(
                                lineno,
                                format!("capacity '{raw}' must be finite and positive"),
                            ));
                        }
                        Some(c)
                    }
                };
                let a = intern(tokens[1], &mut ids, &mut order);
                let b = intern(tokens[2], &mut ids, &mut order);
                if a == b {
                    return Err(parse(
                        lineno,
                        format!("self-loop on '{}' is not allowed", tokens[1]),
                    ));
                }
                let pairs: &[(u32, u32)] = if kw == "link" {
                    &[(a, b), (b, a)]
                } else {
                    &[(a, b)]
                };
                for &(s, d) in pairs {
                    if !seen.insert((s, d)) {
                        return Err(parse(
                            lineno,
                            format!(
                                "duplicate channel '{}' -> '{}'",
                                order[s as usize], order[d as usize]
                            ),
                        ));
                    }
                    channels.push((s, d, capacity));
                }
            }
            other => {
                return Err(parse(
                    lineno,
                    format!("unknown keyword '{other}' (expected node, link or dlink)"),
                ));
            }
        }
    }

    let n = order.len();
    if n < 2 {
        return Err(invalid(format!("needs at least 2 nodes, found {n}")));
    }
    if n > u16::MAX as usize {
        return Err(invalid(format!("needs at most 65535 nodes, found {n}")));
    }

    // Strong connectivity: every node reachable from node 0 forward and
    // backward, so every routing question has an answer.
    let mut fwd = vec![Vec::new(); n];
    let mut bwd = vec![Vec::new(); n];
    for &(s, d, _) in &channels {
        fwd[s as usize].push(d as usize);
        bwd[d as usize].push(s as usize);
    }
    for (adj, dir) in [(&fwd, "from"), (&bwd, "to")] {
        let mut reached = vec![false; n];
        let mut queue = vec![0usize];
        reached[0] = true;
        while let Some(v) = queue.pop() {
            for &w in &adj[v] {
                if !reached[w] {
                    reached[w] = true;
                    queue.push(w);
                }
            }
        }
        if let Some(missing) = reached.iter().position(|&r| !r) {
            return Err(invalid(format!(
                "not strongly connected: no path {dir} '{}' {} '{}'",
                order[0],
                if dir == "from" { "to" } else { "from" },
                order[missing]
            )));
        }
    }

    let coords = (0..n).map(|i| Coord::new(i as u16, 0)).collect();
    let mut topo = Topology::from_parts(TopologyKind::Arbitrary, n as u16, 1, coords);
    for &(s, d, capacity) in &channels {
        topo.push_link(NodeId(s), NodeId(d), None);
        if let Some(c) = capacity {
            let id = topo.find_link(NodeId(s), NodeId(d)).expect("just pushed");
            topo.set_capacity(id, c);
        }
    }
    Ok(topo)
}

fn bad_spec(spec: String, reason: String) -> TopologyError {
    TopologyError::BadSpec { spec, reason }
}

/// Builds a dragonfly topology: `g` groups of `a` routers each, every
/// group internally a full mesh, and exactly one bidirectional global
/// link between every pair of groups, attached round-robin over each
/// group's `h` global ports per router.
///
/// Node `group * a + local` is router `local` of group `group`. With
/// `a = 2, g = 3, h = 2` this is 6 nodes and 12 directed channels.
///
/// # Errors
///
/// [`TopologyError::BadSpec`] unless `a >= 1`, `h >= 1`, `g >= 2`,
/// `g - 1 <= a * h` (enough global ports to reach every other group)
/// and `a * g <= 65535`.
pub fn dragonfly(a: u16, g: u16, h: u16) -> Result<Topology, TopologyError> {
    let spec = format!("dragonfly:{a},{g},{h}");
    if a < 1 || h < 1 || g < 2 {
        return Err(bad_spec(
            spec,
            "needs a >= 1 routers/group, g >= 2 groups, h >= 1 global ports".to_owned(),
        ));
    }
    if (g as usize - 1) > a as usize * h as usize {
        return Err(bad_spec(
            spec,
            format!(
                "g - 1 = {} other groups exceed the a * h = {} global ports per group",
                g - 1,
                a as usize * h as usize
            ),
        ));
    }
    let n = a as usize * g as usize;
    if n > u16::MAX as usize {
        return Err(bad_spec(spec, format!("a * g = {n} exceeds 65535 nodes")));
    }
    let coords = (0..n).map(|i| Coord::new(i as u16, 0)).collect();
    let mut topo = Topology::from_parts(TopologyKind::Dragonfly, n as u16, 1, coords);
    // Intra-group full mesh.
    for grp in 0..g as u32 {
        for i in 0..a as u32 {
            for j in 0..a as u32 {
                if i != j {
                    topo.push_link(NodeId(grp * a as u32 + i), NodeId(grp * a as u32 + j), None);
                }
            }
        }
    }
    // One bidirectional global link per unordered group pair; each
    // group hands out attachment routers round-robin so port loads stay
    // balanced and no two pairs share a channel.
    let mut port = vec![0u32; g as usize];
    for g1 in 0..g as u32 {
        for g2 in (g1 + 1)..g as u32 {
            let s = NodeId(g1 * a as u32 + port[g1 as usize] % a as u32);
            let d = NodeId(g2 * a as u32 + port[g2 as usize] % a as u32);
            port[g1 as usize] += 1;
            port[g2 as usize] += 1;
            topo.push_link(s, d, None);
            topo.push_link(d, s, None);
        }
    }
    Ok(topo)
}

/// Builds a k-ary fat tree: `(k/2)²` core switches, then per pod
/// (`k` pods) `k/2` aggregation and `k/2` edge switches. Aggregation
/// switch `j` of every pod connects up to cores `j*k/2 .. (j+1)*k/2`
/// and down to all of its pod's edge switches; every link is a
/// bidirectional channel pair.
///
/// Node ids: cores first (`0 .. (k/2)²`), then pod-major
/// (`(k/2)² + pod * k + 0 .. k/2` aggregation,
/// `… + k/2 .. k` edge). `k = 4` is the textbook 20-switch instance.
///
/// # Errors
///
/// [`TopologyError::BadSpec`] unless `k` is even and `2 <= k <= 64`.
pub fn fat_tree(k: u16) -> Result<Topology, TopologyError> {
    let spec = format!("fattree:{k}");
    if !(2..=64).contains(&k) || k % 2 != 0 {
        return Err(bad_spec(spec, "k must be even and in 2..=64".to_owned()));
    }
    let half = k as u32 / 2;
    let cores = half * half;
    let n = (cores + k as u32 * k as u32) as usize;
    let coords = (0..n).map(|i| Coord::new(i as u16, 0)).collect();
    let mut topo = Topology::from_parts(TopologyKind::FatTree, n as u16, 1, coords);
    let both = |topo: &mut Topology, a: NodeId, b: NodeId| {
        topo.push_link(a, b, None);
        topo.push_link(b, a, None);
    };
    for pod in 0..k as u32 {
        let base = cores + pod * k as u32;
        for j in 0..half {
            let agg = NodeId(base + j);
            for c in (j * half)..((j + 1) * half) {
                both(&mut topo, agg, NodeId(c));
            }
            for e in 0..half {
                both(&mut topo, agg, NodeId(base + half + e));
            }
        }
    }
    Ok(topo)
}

/// Builds a full mesh (complete graph) on `n` nodes: one directed
/// channel between every ordered pair.
///
/// # Errors
///
/// [`TopologyError::BadSpec`] unless `2 <= n <= 256` (a complete
/// digraph is quadratic in links; 256 nodes is already 65280 channels).
pub fn full_mesh(n: u16) -> Result<Topology, TopologyError> {
    if !(2..=256).contains(&n) {
        return Err(bad_spec(
            format!("fullmesh:{n}"),
            "n must be in 2..=256".to_owned(),
        ));
    }
    let coords = (0..n).map(|i| Coord::new(i, 0)).collect();
    let mut topo = Topology::from_parts(TopologyKind::FullMesh, n, 1, coords);
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d {
                topo.push_link(NodeId(s), NodeId(d), None);
            }
        }
    }
    Ok(topo)
}

/// Builds an arbitrary-kind topology from `n` nodes and explicit
/// directed channels, **without** the file loader's strong-connectivity
/// validation — the one constructor in this workspace that can produce
/// a graph `deadlock::certify_arbitrary` reports as
/// `NotStronglyConnected`. Routing pipelines should keep loading
/// through [`parse_topology_file`]; this is for analysis code that
/// studies the disconnected case on purpose.
///
/// # Errors
///
/// [`TopologyError::BadSpec`] for fewer than 2 nodes, a node id at or
/// past `n`, a self-loop, or a duplicate channel.
pub fn directed_graph(n: u16, edges: &[(u32, u32)]) -> Result<Topology, TopologyError> {
    let spec = format!("graph:{n}");
    let bad = |reason: String| bad_spec(spec.clone(), reason);
    if n < 2 {
        return Err(bad("needs at least 2 nodes".to_owned()));
    }
    let mut seen = std::collections::BTreeSet::new();
    for &(s, d) in edges {
        if s >= n as u32 || d >= n as u32 {
            return Err(bad(format!("channel ({s}, {d}) names a node past {n}")));
        }
        if s == d {
            return Err(bad(format!("self-loop on node {s}")));
        }
        if !seen.insert((s, d)) {
            return Err(bad(format!("duplicate channel ({s}, {d})")));
        }
    }
    let coords = (0..n).map(|i| Coord::new(i, 0)).collect();
    let mut topo = Topology::from_parts(TopologyKind::Arbitrary, n, 1, coords);
    for &(s, d) in edges {
        topo.push_link(NodeId(s), NodeId(d), None);
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::DEFAULT_CAPACITY;

    #[test]
    fn dragonfly_2_3_2_shape() {
        let t = dragonfly(2, 3, 2).expect("valid");
        assert_eq!(t.kind(), TopologyKind::Dragonfly);
        assert_eq!(t.num_nodes(), 6);
        // 3 groups x 2 intra channels + 3 group pairs x 2 directions.
        assert_eq!(t.num_links(), 12);
        // Strongly connected: every pair has a finite hop count.
        for a in t.node_ids() {
            for b in t.node_ids() {
                let hops = t.min_hops(a, b);
                assert!(hops <= 3, "{a} -> {b} took {hops}");
            }
        }
    }

    #[test]
    fn dragonfly_global_links_touch_every_group_pair() {
        let (a, g) = (4, 5);
        let t = dragonfly(a, g, 1).expect("ports suffice: 4 >= 4");
        let group = |n: NodeId| n.0 / a as u32;
        let mut pairs = HashSet::new();
        for l in t.link_ids() {
            let link = t.link(l);
            let (g1, g2) = (group(link.src), group(link.dst));
            if g1 != g2 {
                pairs.insert((g1.min(g2), g1.max(g2)));
            }
        }
        assert_eq!(pairs.len(), (g as usize * (g as usize - 1)) / 2);
    }

    #[test]
    fn dragonfly_rejects_bad_parameters() {
        for (a, g, h) in [(0, 3, 2), (2, 1, 2), (2, 3, 0), (1, 5, 1)] {
            assert!(
                matches!(dragonfly(a, g, h), Err(TopologyError::BadSpec { .. })),
                "dragonfly:{a},{g},{h}"
            );
        }
    }

    #[test]
    fn fat_tree_k4_is_the_textbook_instance() {
        let t = fat_tree(4).expect("valid");
        assert_eq!(t.kind(), TopologyKind::FatTree);
        assert_eq!(t.num_nodes(), 20);
        // 4 cores x 4 agg uplinks? Each of 8 agg switches has 2 core +
        // 2 edge bidirectional links: 8 * 4 * 2 directed channels.
        assert_eq!(t.num_links(), 64);
        // Edge-to-edge across pods routes up and down in 4 hops.
        let edge0 = NodeId(4 + 2); // pod 0, first edge switch
        let edge3 = NodeId(4 + 3 * 4 + 2); // pod 3, first edge switch
        assert_eq!(t.min_hops(edge0, edge3), 4);
    }

    #[test]
    fn fat_tree_rejects_odd_and_oversized_k() {
        for k in [0, 1, 3, 5, 65, 66] {
            assert!(
                matches!(fat_tree(k), Err(TopologyError::BadSpec { .. })),
                "fattree:{k}"
            );
        }
    }

    #[test]
    fn full_mesh_is_complete() {
        let t = full_mesh(8).expect("valid");
        assert_eq!(t.kind(), TopologyKind::FullMesh);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_links(), 8 * 7);
        for a in t.node_ids() {
            for b in t.node_ids() {
                if a != b {
                    assert_eq!(t.min_hops(a, b), 1);
                }
            }
        }
        assert!(matches!(full_mesh(1), Err(TopologyError::BadSpec { .. })));
        assert!(matches!(full_mesh(257), Err(TopologyError::BadSpec { .. })));
    }

    #[test]
    fn loader_round_trips_names_capacities_and_directions() {
        let text = "
            # A 4-node WAN with one directed shortcut.
            node sea
            node chi
            link sea chi 2500
            link chi nyc
            link nyc atl 1250.5
            link atl sea
            dlink sea nyc
        ";
        let t = parse_topology_file("wan", text).expect("valid file");
        assert_eq!(t.kind(), TopologyKind::Arbitrary);
        assert_eq!(t.num_nodes(), 4);
        // 4 undirected links -> 8 channels, plus the dlink.
        assert_eq!(t.num_links(), 9);
        // First-appearance ids: sea=0, chi=1, nyc=2, atl=3.
        let l = t.find_link(NodeId(0), NodeId(1)).expect("sea -> chi");
        assert_eq!(t.link(l).capacity, 2500.0);
        let l = t.find_link(NodeId(1), NodeId(2)).expect("chi -> nyc");
        assert_eq!(t.link(l).capacity, DEFAULT_CAPACITY);
        assert!(t.find_link(NodeId(0), NodeId(2)).is_some(), "dlink fwd");
        assert!(t.find_link(NodeId(2), NodeId(0)).is_none(), "dlink only");
    }

    #[test]
    fn loader_rejects_malformed_lines_with_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("wat a b", 1, "unknown keyword"),
            ("node", 1, "exactly one name"),
            ("\nlink a", 2, "optional capacity"),
            ("link a a", 1, "self-loop"),
            ("link a b -3", 1, "finite and positive"),
            ("link a b inf", 1, "finite and positive"),
            ("link a b fast", 1, "not a number"),
            ("link a b\n\ndlink a b", 3, "duplicate channel"),
        ];
        for &(text, line, needle) in cases {
            match parse_topology_file("bad", text) {
                Err(TopologyFileError::Parse {
                    line: l, message, ..
                }) => {
                    assert_eq!(l, line, "{text:?}");
                    assert!(message.contains(needle), "{text:?}: {message}");
                }
                other => panic!("{text:?} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn loader_rejects_structurally_invalid_graphs() {
        // Too few nodes.
        let err = parse_topology_file("tiny", "node only").unwrap_err();
        assert!(matches!(err, TopologyFileError::Invalid { .. }), "{err}");
        assert!(err.to_string().contains("at least 2 nodes"));
        // Weakly but not strongly connected.
        let err = parse_topology_file("oneway", "dlink a b\ndlink c b\ndlink a c").unwrap_err();
        assert!(err.to_string().contains("not strongly connected"), "{err}");
        // Disconnected components.
        let err = parse_topology_file("split", "link a b\nlink c d").unwrap_err();
        assert!(err.to_string().contains("not strongly connected"), "{err}");
    }

    #[test]
    fn loader_accepts_a_strongly_connected_directed_ring() {
        let t = parse_topology_file("ring3", "dlink a b\ndlink b c\ndlink c a").expect("valid");
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.min_hops(NodeId(0), NodeId(2)), 2);
    }

    #[test]
    fn load_missing_file_is_a_typed_io_error() {
        let err = load_topology_file("/nonexistent/nowhere.topo").unwrap_err();
        assert!(matches!(err, TopologyFileError::Io { .. }), "{err}");
    }

    #[test]
    fn directed_graph_builds_without_connectivity_validation() {
        // Two components — exactly what the file loader refuses.
        let t = directed_graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]).expect("valid edges");
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.kind(), crate::TopologyKind::Arbitrary);
        // Structural validation still applies.
        for (edges, fragment) in [
            (vec![(0u32, 4u32)], "past"),
            (vec![(1, 1)], "self-loop"),
            (vec![(0, 1), (0, 1)], "duplicate"),
        ] {
            let err = directed_graph(4, &edges).unwrap_err();
            assert!(err.to_string().contains(fragment), "{err}");
        }
        assert!(directed_graph(1, &[]).is_err());
    }
}
