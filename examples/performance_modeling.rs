//! Routing the processor performance-modeling application (paper
//! §5.2.2, Figure 5-2): a three-stage pipeline whose register-file
//! stream (62.73 MB/s) dominates, with a large worst-case/average-case
//! latency gap — the paper's motivating case for bandwidth-aware
//! routing on FPGA-hosted performance models (HAsim/FAST).
//!
//! Also demonstrates the load-balance statistics: BSOR spreads load so
//! the peak-to-mean ratio drops versus dimension-order routing.
//!
//! ```text
//! cargo run --release --example performance_modeling
//! ```

use bsor::{BsorBuilder, SelectorKind};
use bsor_lp::MilpOptions;
use bsor_routing::selectors::MilpSelector;
use bsor_routing::Baseline;
use bsor_topology::Topology;
use bsor_workloads::performance_modeling;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = performance_modeling(&mesh)?;
    println!(
        "performance modeling: {} flows, largest {:.2} MB/s (register traffic)",
        workload.flows.len(),
        workload.flows.max_demand()
    );

    let milp = MilpSelector::new()
        .with_hop_slack(4)
        .with_max_paths(60)
        .with_options(MilpOptions {
            max_nodes: 40,
            time_limit: Some(Duration::from_secs(10)),
            ..MilpOptions::default()
        });
    let bsor = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .selector(SelectorKind::Milp(milp))
        .run()?;
    let xy = Baseline::XY.select(&mesh, &workload.flows, 2)?;

    println!(
        "\n{:>14} {:>9} {:>10} {:>10} {:>12}",
        "algorithm", "MCL", "mean load", "links", "peak/mean"
    );
    for (name, routes) in [("XY", &xy), ("BSOR-MILP", &bsor.routes)] {
        let b = routes.balance(&mesh, &workload.flows);
        println!(
            "{name:>14} {:>9.2} {:>10.2} {:>10} {:>12.2}",
            routes.mcl(&mesh, &workload.flows),
            b.mean_load,
            b.used_links,
            b.peak_to_mean()
        );
    }
    println!(
        "\nBSOR found MCL {:.2} MB/s on CDG '{}' (paper's Table 6.3 row: \
         XY 95.04, BSOR-MILP 62.73 — same ordering)",
        bsor.mcl, bsor.cdg
    );
    Ok(())
}
