//! `bsor-serve` — a long-lived routing-plan service over the
//! `Planner`/`PlanCache` split.
//!
//! Speaks one JSON object per line: `plan`, `evaluate`, `invalidate`
//! and `stats` requests answered on the same line (see
//! `bsor_bench::serve` for the protocol grammar). By default it serves
//! stdin → stdout until EOF, which makes it scriptable:
//!
//! ```text
//! printf '%s\n' '{"op":"plan","workload":"transpose","algorithm":"bsor-dijkstra"}' \
//!   | cargo run -p bsor_bench --release --bin bsor-serve -- --no-timings
//! ```
//!
//! With `--listen ADDR` it instead accepts TCP connections forever,
//! one thread per connection, all sharing one plan cache.
//!
//! ```text
//! cargo run -p bsor_bench --release --bin bsor-serve -- [options]
//!
//!   --listen ADDR       serve TCP on ADDR (e.g. 127.0.0.1:4800) instead of stdin
//!   --capacity N        LRU capacity in plans (default 256; 0 = unbounded)
//!   --capacity-bytes N  approximate LRU byte budget (default unbounded)
//!   --shards N          cache shard count (default 8)
//!   --stats-every N     log a cache-stats line to stderr every N requests
//!   --no-timings        zero wall-clock response fields (byte-identical replays)
//!   --compact-tables    serve interval-compressed router tables (behaviorally
//!                       identical; per-plan table_bytes and cache bytes shrink)
//! ```
//!
//! Exit codes: 0 on clean EOF, 1 on bad arguments or transport failure.

use bsor_bench::serve::{serve_lines, serve_tcp, PlanService, ServeConfig};
use bsor_sim::PlanCacheConfig;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    listen: Option<String>,
    config: ServeConfig,
}

fn usage() {
    println!("bsor-serve: line-delimited JSON routing-plan service");
    println!();
    println!("options: --listen ADDR --capacity N --capacity-bytes N --shards N");
    println!("         --stats-every N --no-timings --compact-tables --help");
    println!("ops: plan, evaluate, invalidate, stats (one JSON object per line)");
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut listen = None;
    let mut capacity: usize = 256;
    let mut capacity_bytes: usize = 0;
    let mut shards: usize = 8;
    let mut stats_every: u64 = 0;
    let mut timings = true;
    let mut compact_tables = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => listen = Some(value("--listen")?),
            "--capacity" => {
                capacity = value("--capacity")?
                    .parse()
                    .map_err(|_| "bad --capacity".to_string())?;
            }
            "--capacity-bytes" => {
                capacity_bytes = value("--capacity-bytes")?
                    .parse()
                    .map_err(|_| "bad --capacity-bytes".to_string())?;
            }
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?;
                if shards == 0 {
                    return Err("--shards needs at least one shard".to_string());
                }
            }
            "--stats-every" => {
                stats_every = value("--stats-every")?
                    .parse()
                    .map_err(|_| "bad --stats-every".to_string())?;
            }
            "--no-timings" => timings = false,
            "--compact-tables" => compact_tables = true,
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(Options {
        listen,
        config: ServeConfig {
            cache: PlanCacheConfig::new()
                .max_plans(capacity)
                .max_bytes(capacity_bytes)
                .shards(shards),
            timings,
            stats_every,
            compact_tables,
        },
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("bsor-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = PlanService::new(options.config);
    match options.listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(e) => {
                    eprintln!("bsor-serve: cannot listen on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("bsor-serve: listening on {addr}");
            if let Err(e) = serve_tcp(Arc::new(service), listener) {
                eprintln!("bsor-serve: accept failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = serve_lines(&service, stdin.lock(), stdout.lock()) {
                eprintln!("bsor-serve: transport failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
    }
}
