//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A length, or a range of lengths, for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
