//! Regenerates **Figure 6-7**: "Varying the number of VCs for transpose
//! and H.264 Decoder." Throughput vs offered rate with 1, 2, 4 and 8
//! virtual channels, BSOR selectors vs dimension-order routing. With a
//! single VC only the DOR algorithms and BSOR are compared (ROMM and
//! Valiant would deadlock), exactly as in §6.2.7.
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_7 [--quick] [--paper] [--csv]
//! ```

use bsor::{BsorBuilder, SelectorKind};
use bsor_bench::{csv_mode, figure_rates, figure_sweep, load_sweep, standard_mesh};
use bsor_routing::selectors::DijkstraSelector;
use bsor_routing::Baseline;
use bsor_workloads::{h264_decoder, transpose};

fn main() {
    let topo = standard_mesh();
    let rates = figure_rates();
    let csv = csv_mode();
    if csv {
        println!("workload,vcs,algorithm,offered,throughput,latency");
    }
    for workload in [
        transpose(&topo).expect("square"),
        h264_decoder(&topo).expect("fits"),
    ] {
        for vcs in [1u8, 2, 4, 8] {
            let cfg = figure_sweep(vcs);
            if !csv {
                println!("Figure 6-7: {} with {vcs} VC(s)", workload.name);
            }
            let mut algos: Vec<(String, Result<_, String>)> = vec![
                (
                    "XY".into(),
                    Baseline::XY
                        .select(&topo, &workload.flows, vcs)
                        .map_err(|e| e.to_string()),
                ),
                (
                    "BSOR-Dijkstra".to_string(),
                    BsorBuilder::new(&topo, &workload.flows)
                        .vcs(vcs)
                        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
                        .run()
                        .map(|r| r.routes)
                        .map_err(|e| e.to_string()),
                ),
            ];
            if vcs >= 2 {
                algos.push((
                    "ROMM".into(),
                    Baseline::Romm { seed: 9 }
                        .select(&topo, &workload.flows, vcs)
                        .map_err(|e| e.to_string()),
                ));
            }
            for (name, routes) in algos {
                match routes {
                    Err(e) => println!("{name}: skipped ({e})"),
                    Ok(routes) => {
                        for p in load_sweep(&topo, &workload.flows, &routes, &rates, &cfg) {
                            let lat = p
                                .latency
                                .map(|l| format!("{l:.1}"))
                                .unwrap_or_else(|| "-".into());
                            if csv {
                                println!(
                                    "{},{vcs},{name},{:.3},{:.4},{lat}",
                                    workload.name, p.offered, p.throughput
                                );
                            } else {
                                println!(
                                    "  {name:>14}  rate {:.3}  tput {:.4}  lat {lat}",
                                    p.offered, p.throughput
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
