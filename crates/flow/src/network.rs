//! The flow network `GA`, channel-load accounting, and the Dijkstra
//! selector's weight function.

use crate::flow::Flow;
use bsor_cdg::AcyclicCdg;
use bsor_netgraph::{algo, NodeId as GraphNode};
use bsor_topology::{LinkId, Topology};

/// The flow network derived from an acyclic CDG (paper §3.4).
///
/// Vertices of `GA` are the acyclic CDG's vertices (channels, or
/// channel/VC pairs); per-flow source and sink terminals are represented
/// implicitly: a route for flow `i` may start on any vertex whose channel
/// leaves `si` and end on any vertex whose channel enters `ti`.
#[derive(Clone, Copy, Debug)]
pub struct FlowNetwork<'a> {
    topo: &'a Topology,
    acyclic: &'a AcyclicCdg,
}

impl<'a> FlowNetwork<'a> {
    /// Pairs a topology with an acyclic CDG derived from it.
    ///
    /// # Panics
    ///
    /// Panics if the CDG's vertex count does not match
    /// `topo.num_links() * vcs` (i.e. the CDG was built from a different
    /// topology).
    pub fn new(topo: &'a Topology, acyclic: &'a AcyclicCdg) -> Self {
        assert_eq!(
            acyclic.graph().node_count(),
            topo.num_links() * acyclic.vcs() as usize,
            "acyclic CDG does not match topology"
        );
        FlowNetwork { topo, acyclic }
    }

    /// The topology.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The acyclic CDG.
    pub fn acyclic(&self) -> &'a AcyclicCdg {
        self.acyclic
    }

    /// Vertices on which a route for `flow` may start.
    pub fn sources(&self, flow: &Flow) -> Vec<GraphNode> {
        self.acyclic.sources_for(flow.src)
    }

    /// Vertices on which a route for `flow` may end.
    pub fn sinks(&self, flow: &Flow) -> Vec<GraphNode> {
        self.acyclic.sinks_for(flow.dst)
    }

    /// Boolean mask over CDG vertices marking `flow`'s sinks.
    pub fn sink_mask(&self, flow: &Flow) -> Vec<bool> {
        let mut mask = vec![false; self.acyclic.graph().node_count()];
        for v in self.sinks(flow) {
            mask[v.index()] = true;
        }
        mask
    }

    /// Minimum number of channels on any route for `flow` that conforms to
    /// the acyclic CDG, or `None` if the CDG admits no route at all.
    ///
    /// On a full mesh CDG this equals the Manhattan distance; cycle
    /// breaking can only increase it.
    pub fn min_route_links(&self, flow: &Flow) -> Option<usize> {
        let sources = self.sources(flow);
        let hops = algo::bfs_hops(self.acyclic.graph(), &sources);
        let best = self
            .sinks(flow)
            .into_iter()
            .map(|v| hops[v.index()])
            .min()?;
        if best == usize::MAX {
            None
        } else {
            // `best` counts dependence edges; channels = edges + 1.
            Some(best + 1)
        }
    }

    /// Capacity of the physical channel under a CDG vertex.
    pub fn capacity_of(&self, vertex: GraphNode) -> f64 {
        let v = self.acyclic.cdg().vertex(vertex);
        self.topo.link(v.link).capacity
    }
}

/// Accumulated bandwidth load per physical channel plus per-CDG-vertex
/// flow counts (for the multi-VC weight bias of paper §3.7).
#[derive(Clone, Debug)]
pub struct LoadState {
    link_load: Vec<f64>,
    vertex_flows: Vec<u32>,
}

impl LoadState {
    /// Creates a zero-load state sized for `net`.
    pub fn new(net: &FlowNetwork<'_>) -> LoadState {
        LoadState {
            link_load: vec![0.0; net.topology().num_links()],
            vertex_flows: vec![0; net.acyclic().graph().node_count()],
        }
    }

    /// Adds a route (sequence of CDG vertices) carrying `demand` MB/s.
    pub fn add_path(&mut self, net: &FlowNetwork<'_>, path: &[GraphNode], demand: f64) {
        for &v in path {
            let link = net.acyclic().cdg().vertex(v).link;
            self.link_load[link.index()] += demand;
            self.vertex_flows[v.index()] += 1;
        }
    }

    /// Removes a previously added route.
    ///
    /// # Panics
    ///
    /// Debug-asserts the path was in fact accounted.
    pub fn remove_path(&mut self, net: &FlowNetwork<'_>, path: &[GraphNode], demand: f64) {
        for &v in path {
            let link = net.acyclic().cdg().vertex(v).link;
            self.link_load[link.index()] -= demand;
            debug_assert!(self.link_load[link.index()] > -1e-9, "negative link load");
            debug_assert!(self.vertex_flows[v.index()] > 0, "flow count underflow");
            self.vertex_flows[v.index()] -= 1;
        }
    }

    /// Current load on a physical channel (MB/s).
    pub fn link_load(&self, link: LinkId) -> f64 {
        self.link_load[link.index()]
    }

    /// Number of flows currently assigned to a CDG vertex (channel/VC).
    pub fn flows_on(&self, vertex: GraphNode) -> u32 {
        self.vertex_flows[vertex.index()]
    }

    /// The maximum channel load `U = max_e Σᵢ fᵢ(e)` (paper Definition 3).
    pub fn mcl(&self) -> f64 {
        self.link_load.iter().copied().fold(0.0, f64::max)
    }

    /// Residual capacity `a(e)` of the channel under `vertex`.
    pub fn residual(&self, net: &FlowNetwork<'_>, vertex: GraphNode) -> f64 {
        let link = net.acyclic().cdg().vertex(vertex).link;
        net.topology().link(link).capacity - self.link_load[link.index()]
    }
}

/// Parameters of the Dijkstra selector's weight function (paper §3.6 and
/// §3.7):
///
/// `w(v) = 1 / max(a(v) − d + M, ε) + vc_bias · flows_on(v)`
///
/// where `a(v)` is the residual capacity of the channel under vertex `v`,
/// `d` the demand being routed, and `M` a constant comparable to the
/// maximum link bandwidth that keeps weights positive; increasing `M`
/// biases the selector towards fewer hops.
#[derive(Clone, Copy, Debug)]
pub struct WeightParams {
    /// The hop-bias constant `M`.
    pub m_const: f64,
    /// Additional weight per flow already assigned to the same channel/VC
    /// vertex, spreading flows across virtual channels.
    pub vc_bias: f64,
}

impl WeightParams {
    /// Parameters matching the paper's description: `M` equal to the
    /// maximum link bandwidth, and a small VC-spreading bias.
    pub fn from_topology(topo: &Topology) -> WeightParams {
        let m = topo.max_capacity();
        WeightParams {
            m_const: m,
            vc_bias: 0.1 / m,
        }
    }

    /// Weight of entering `vertex` while routing a flow of demand
    /// `demand`. Always positive and finite.
    pub fn weight(
        &self,
        net: &FlowNetwork<'_>,
        state: &LoadState,
        vertex: GraphNode,
        demand: f64,
    ) -> f64 {
        let denom = state.residual(net, vertex) - demand + self.m_const;
        let floor = self.m_const * 1e-9;
        let base = 1.0 / denom.max(floor);
        base + self.vc_bias * state.flows_on(vertex) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Flow, FlowId};
    use bsor_cdg::{AcyclicCdg, TurnModel};
    use bsor_topology::NodeId;

    fn setup() -> (Topology, AcyclicCdg) {
        let t = Topology::mesh2d(4, 4);
        let a = AcyclicCdg::turn_model(&t, 1, &TurnModel::west_first()).expect("valid");
        (t, a)
    }

    #[test]
    fn min_route_links_equals_manhattan_under_west_first() {
        let (t, a) = setup();
        let net = FlowNetwork::new(&t, &a);
        for (sx, sy, dx, dy) in [(0u16, 0u16, 3u16, 3u16), (3, 0, 0, 2), (1, 2, 2, 0)] {
            let s = t.node_at(sx, sy).unwrap();
            let d = t.node_at(dx, dy).unwrap();
            let f = Flow::new(FlowId(0), s, d, 1.0);
            let manhattan = t.coord(s).manhattan(t.coord(d)) as usize;
            assert_eq!(
                net.min_route_links(&f),
                Some(manhattan),
                "({sx},{sy})->({dx},{dy})"
            );
        }
    }

    #[test]
    fn sources_and_sinks_match_degree() {
        let (t, a) = setup();
        let net = FlowNetwork::new(&t, &a);
        let f = Flow::new(
            FlowId(0),
            t.node_at(0, 0).unwrap(),
            t.node_at(1, 1).unwrap(),
            1.0,
        );
        assert_eq!(net.sources(&f).len(), 2); // corner: 2 outgoing channels
        assert_eq!(net.sinks(&f).len(), 4); // interior: 4 incoming channels
        let mask = net.sink_mask(&f);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn load_state_tracks_mcl() {
        let (t, a) = setup();
        let net = FlowNetwork::new(&t, &a);
        let mut load = LoadState::new(&net);
        assert_eq!(load.mcl(), 0.0);
        // A two-channel route.
        let verts: Vec<GraphNode> = a.graph().node_ids().take(2).collect();
        load.add_path(&net, &verts, 25.0);
        assert_eq!(load.mcl(), 25.0);
        load.add_path(&net, &verts[..1], 10.0);
        assert_eq!(load.mcl(), 35.0);
        load.remove_path(&net, &verts[..1], 10.0);
        assert_eq!(load.mcl(), 25.0);
        load.remove_path(&net, &verts, 25.0);
        assert!(load.mcl().abs() < 1e-12);
    }

    #[test]
    fn weights_increase_with_load() {
        let (t, a) = setup();
        let net = FlowNetwork::new(&t, &a);
        let mut load = LoadState::new(&net);
        let params = WeightParams::from_topology(&t);
        let v = a.graph().node_ids().next().expect("has vertices");
        let w0 = params.weight(&net, &load, v, 25.0);
        load.add_path(&net, &[v], 500.0);
        let w1 = params.weight(&net, &load, v, 25.0);
        assert!(w1 > w0, "loaded channel must weigh more");
        assert!(w0 > 0.0 && w0.is_finite());
    }

    #[test]
    fn weights_stay_positive_even_oversubscribed() {
        let (t, a) = setup();
        let net = FlowNetwork::new(&t, &a);
        let mut load = LoadState::new(&net);
        let params = WeightParams::from_topology(&t);
        let v = a.graph().node_ids().next().expect("has vertices");
        // Oversubscribe far beyond capacity: a(e) - d + M goes negative.
        load.add_path(&net, &[v], 10_000.0);
        let w = params.weight(&net, &load, v, 25.0);
        assert!(w > 0.0 && w.is_finite());
    }

    #[test]
    fn vc_bias_separates_virtual_channels() {
        let t = Topology::mesh2d(3, 3);
        let a = AcyclicCdg::turn_model(&t, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&t, &a);
        let mut load = LoadState::new(&net);
        let params = WeightParams::from_topology(&t);
        // Two VCs of the same physical link.
        let link = bsor_topology::LinkId(0);
        let v0 = a.cdg().vertex_id(link, bsor_cdg::VcId(0));
        let v1 = a.cdg().vertex_id(link, bsor_cdg::VcId(1));
        load.add_path(&net, &[v0], 25.0);
        let w0 = params.weight(&net, &load, v0, 25.0);
        let w1 = params.weight(&net, &load, v1, 25.0);
        assert!(
            w0 > w1,
            "occupied VC must weigh more than its empty sibling ({w0} vs {w1})"
        );
    }

    #[test]
    fn capacity_of_matches_topology() {
        let (t, a) = setup();
        let net = FlowNetwork::new(&t, &a);
        for v in a.graph().node_ids() {
            let link = a.cdg().vertex(v).link;
            assert_eq!(net.capacity_of(v), t.link(link).capacity);
        }
    }

    #[test]
    fn min_route_links_none_for_unroutable() {
        // An aggressive random-order CDG can disconnect some pairs; verify
        // the API reports None rather than panicking. Construct a case by
        // deleting every edge: route exists only when src/dst are adjacent
        // (single-channel path).
        let t = Topology::mesh2d(3, 3);
        let mut cdg = bsor_cdg::Cdg::build(&t, 1);
        let all: Vec<_> = cdg.graph().edge_ids().collect();
        for e in all {
            cdg.graph_mut().remove_edge(e);
        }
        let a = AcyclicCdg::try_new(cdg, "empty", 0).expect("edgeless graph is acyclic");
        let net = FlowNetwork::new(&t, &a);
        let adj = Flow::new(FlowId(0), NodeId(0), NodeId(1), 1.0);
        assert_eq!(net.min_route_links(&adj), Some(1));
        let far = Flow::new(FlowId(1), NodeId(0), NodeId(8), 1.0);
        assert_eq!(net.min_route_links(&far), None);
    }
}
