//! The framework-level [`RouteAlgorithm`] and the name-keyed algorithm
//! registry.
//!
//! [`BsorAlgorithm`] adapts the exploring BSOR framework
//! ([`crate::BsorBuilder`]) to the single [`RouteAlgorithm`] trait: on
//! meshes it explores the paper's CDG set (all valid turn models plus
//! three ad-hoc derivations) and keeps the minimum-MCL routes; on
//! topologies turn models reject (tori, rings, hypercubes) it explores
//! unprotected ad-hoc CDGs instead, so the same name routes every
//! registered topology.
//!
//! [`AlgorithmRegistry`] is the name → algorithm map every driver
//! enumerates. [`AlgorithmRegistry::standard`] seeds it with the nine
//! sweep-grid names (`xy`, `yx`, `romm`, `valiant`, `o1turn`,
//! `bsor-dijkstra`, `bsor-milp`, `ac-oblivious`, `random-walk`),
//! configured exactly as the sweep harness has always configured them —
//! deterministic seeds and node budgets, no wall-clock limits.

use crate::{BsorBuilder, CdgStrategy, SelectorKind};
use bsor_lp::MilpOptions;
use bsor_routing::selectors::{
    AcObliviousSelector, DijkstraSelector, MilpSelector, RandomWalkSelector,
};
use bsor_routing::{Baseline, RouteSet};
use bsor_sim::{AlgorithmError, RouteAlgorithm, ScenarioCtx};
use bsor_topology::TopologyKind;

/// Seed the registry's randomized baselines (ROMM/Valiant/O1TURN) use,
/// matching the bench harness's historical value.
pub const BASELINE_SEED: u64 = 9;

/// Number of unprotected ad-hoc CDGs [`BsorAlgorithm`] explores on
/// topologies without valid turn models.
const AD_HOC_ANY_SEEDS: u64 = 10;

/// The full BSOR framework (explore acyclic CDGs, keep the minimum-MCL
/// routes) as a plug-in [`RouteAlgorithm`].
///
/// Unlike the raw selectors — which route inside the scenario's one CDG
/// — this algorithm explores its own CDG family, which is how the
/// paper's headline numbers (Tables 6.1–6.3) are produced.
#[derive(Clone, Debug)]
pub struct BsorAlgorithm {
    name: String,
    selector: SelectorKind,
    /// Exploration set used on meshes; `None` means the
    /// [`BsorBuilder`] default (all turn models + three ad-hoc CDGs).
    strategies: Option<Vec<CdgStrategy>>,
}

impl BsorAlgorithm {
    /// The scalable Dijkstra-selector framework (`bsor-dijkstra`).
    pub fn dijkstra() -> BsorAlgorithm {
        BsorAlgorithm {
            name: "bsor-dijkstra".to_owned(),
            selector: SelectorKind::Dijkstra(DijkstraSelector::new()),
            strategies: None,
        }
    }

    /// A MILP-selector framework under `selector`'s budget, displayed as
    /// `name`.
    pub fn milp(name: impl Into<String>, selector: MilpSelector) -> BsorAlgorithm {
        BsorAlgorithm {
            name: name.into(),
            selector: SelectorKind::Milp(selector),
            strategies: None,
        }
    }

    /// A framework over an arbitrary selector, displayed as `name`.
    pub fn with_selector(name: impl Into<String>, selector: SelectorKind) -> BsorAlgorithm {
        BsorAlgorithm {
            name: name.into(),
            selector,
            strategies: None,
        }
    }

    /// Replaces the mesh exploration set.
    pub fn with_strategies(mut self, strategies: Vec<CdgStrategy>) -> BsorAlgorithm {
        self.strategies = Some(strategies);
        self
    }
}

impl RouteAlgorithm for BsorAlgorithm {
    fn name(&self) -> &str {
        &self.name
    }

    /// Includes the selector configuration and any custom exploration
    /// set — two `BsorAlgorithm`s may share a display name while
    /// routing differently.
    fn cache_key(&self) -> String {
        format!("{}:{:?}:{:?}", self.name, self.selector, self.strategies)
    }

    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        let mut builder = BsorBuilder::new(ctx.topo, ctx.flows).vcs(ctx.vcs);
        if let Some(strategies) = &self.strategies {
            builder = builder.strategies(strategies.clone());
        } else if ctx.topo.kind() != TopologyKind::Mesh2D {
            // Turn models exist only on meshes; elsewhere explore
            // unprotected ad-hoc CDGs (some seeds disconnect pairs —
            // exploring several finds usable ones, and failures are
            // recorded per CDG).
            let mut strategies: Vec<CdgStrategy> = (0..AD_HOC_ANY_SEEDS)
                .map(|seed| CdgStrategy::AdHocAny { seed })
                .collect();
            if matches!(
                ctx.topo.kind(),
                TopologyKind::Dragonfly
                    | TopologyKind::FatTree
                    | TopologyKind::FullMesh
                    | TopologyKind::Arbitrary
            ) {
                // Arbitrary-graph families additionally explore the
                // up*/down* escape ordering, which keeps every pair
                // routable on symmetric graphs even at one VC.
                strategies.push(CdgStrategy::UpDown);
            }
            builder = builder.strategies(strategies);
        }
        builder
            .selector(self.selector.clone())
            .run()
            .map(|result| result.routes)
            .map_err(|e| AlgorithmError::Failed(e.to_string()))
    }
}

/// Per-run budget overrides for [`AlgorithmRegistry::standard_with`].
///
/// `Default` leaves every budget at its selector default, making
/// `standard_with(RegistryConfig::default())` identical to
/// [`AlgorithmRegistry::standard`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Directed-link budget for `ac-oblivious` (`None` keeps the
    /// selector's 16-directed-link default).
    pub max_links: Option<usize>,
    /// Hop budget applied to the BSOR selector family (`bsor-dijkstra`,
    /// `bsor-milp`) and `random-walk`; routes over the budget surface as
    /// typed `HopBudgetExceeded` refusals instead of silently shipping.
    pub max_hops: Option<usize>,
}

impl RegistryConfig {
    /// A config with every budget at its selector default.
    pub fn new() -> RegistryConfig {
        RegistryConfig::default()
    }

    /// Sets the `ac-oblivious` directed-link budget.
    #[must_use]
    pub fn with_max_links(mut self, max_links: usize) -> RegistryConfig {
        self.max_links = Some(max_links);
        self
    }

    /// Sets the hop budget for the BSOR selectors and `random-walk`.
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> RegistryConfig {
        self.max_hops = Some(max_hops);
        self
    }
}

/// The deterministic MILP configuration the sweep harness uses for
/// `bsor-milp`: node budget only — a wall-clock limit would make the
/// chosen routes depend on machine speed and break reproducibility.
pub fn sweep_milp() -> MilpSelector {
    MilpSelector::new()
        .with_hop_slack(2)
        .with_max_paths(40)
        .with_options(MilpOptions {
            max_nodes: 20,
            time_limit: None,
            ..MilpOptions::default()
        })
}

/// Name-keyed registry of routing algorithms.
///
/// Stored algorithms are shared-state-free (`Send + Sync`), so one
/// registry can serve every sweep worker thread by reference.
///
/// ```
/// use bsor::AlgorithmRegistry;
/// use bsor_sim::Scenario;
/// use bsor_topology::Topology;
/// use bsor_workloads::workload_by_name;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = AlgorithmRegistry::standard();
/// let mesh = Topology::mesh2d(4, 4);
/// let workload = workload_by_name(&mesh, "transpose")?;
/// let scenario = Scenario::builder(mesh, workload.flows).vcs(2).build()?;
/// let xy = registry.get("xy").expect("registered");
/// let routes = scenario.select_routes(xy)?;
/// assert_eq!(routes.len(), scenario.flows().len());
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct AlgorithmRegistry {
    entries: Vec<(String, Box<dyn RouteAlgorithm + Send + Sync>)>,
}

impl AlgorithmRegistry {
    /// An empty registry.
    pub fn new() -> AlgorithmRegistry {
        AlgorithmRegistry::default()
    }

    /// The nine sweep-grid algorithms: `xy`, `yx`, `romm`, `valiant`,
    /// `o1turn`, `bsor-dijkstra`, `bsor-milp`, plus the demand-oblivious
    /// counterpoints `ac-oblivious` and `random-walk`.
    pub fn standard() -> AlgorithmRegistry {
        AlgorithmRegistry::standard_with(RegistryConfig::default())
    }

    /// [`AlgorithmRegistry::standard`] with per-run budget overrides:
    /// `config.max_links` raises the `ac-oblivious` LP's directed-link
    /// budget, `config.max_hops` caps route length on the BSOR selector
    /// family and `random-walk`. Budgets flow into each algorithm's
    /// `cache_key`, so differently-budgeted plans never alias in a
    /// shared [`bsor_sim::PlanCache`].
    pub fn standard_with(config: RegistryConfig) -> AlgorithmRegistry {
        let mut dijkstra = DijkstraSelector::new();
        let mut milp = sweep_milp();
        let mut ac = AcObliviousSelector::new().with_seed(BASELINE_SEED);
        let mut walk = RandomWalkSelector::new().with_seed(BASELINE_SEED);
        if let Some(max_hops) = config.max_hops {
            dijkstra = dijkstra.with_max_hops(max_hops);
            milp = milp.with_max_hops(max_hops);
            walk = walk.with_max_hops(max_hops);
        }
        if let Some(max_links) = config.max_links {
            ac = ac.with_max_links(max_links);
        }
        let mut r = AlgorithmRegistry::new();
        r.register("xy", Baseline::XY);
        r.register("yx", Baseline::YX);
        r.register(
            "romm",
            Baseline::Romm {
                seed: BASELINE_SEED,
            },
        );
        r.register(
            "valiant",
            Baseline::Valiant {
                seed: BASELINE_SEED,
            },
        );
        r.register(
            "o1turn",
            Baseline::O1Turn {
                seed: BASELINE_SEED,
            },
        );
        r.register(
            "bsor-dijkstra",
            BsorAlgorithm::with_selector("bsor-dijkstra", SelectorKind::Dijkstra(dijkstra)),
        );
        r.register("bsor-milp", BsorAlgorithm::milp("bsor-milp", milp));
        r.register("ac-oblivious", ac);
        r.register("random-walk", walk);
        r
    }

    /// Registers (or replaces) an algorithm under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        algorithm: impl RouteAlgorithm + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Box::new(algorithm)));
    }

    /// The algorithm registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&(dyn RouteAlgorithm + Send + Sync)> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| a.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_flow::FlowSet;
    use bsor_routing::deadlock;
    use bsor_sim::Scenario;
    use bsor_topology::{NodeId, Topology};
    use bsor_workloads::transpose;

    #[test]
    fn standard_names() {
        let r = AlgorithmRegistry::standard();
        assert_eq!(
            r.names(),
            vec![
                "xy",
                "yx",
                "romm",
                "valiant",
                "o1turn",
                "bsor-dijkstra",
                "bsor-milp",
                "ac-oblivious",
                "random-walk"
            ]
        );
        assert!(r.get("bsor-dijkstra").is_some());
        assert!(r.get("magic").is_none());
    }

    #[test]
    fn bsor_through_trait_matches_builder_on_mesh() {
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let direct = BsorBuilder::new(&topo, &w.flows)
            .vcs(2)
            .run()
            .expect("routable");
        let scenario = Scenario::builder(topo, w.flows).vcs(2).build().expect("ok");
        let via_trait = scenario
            .select_routes(&BsorAlgorithm::dijkstra())
            .expect("routable");
        assert_eq!(direct.routes, via_trait);
    }

    #[test]
    fn bsor_algorithm_routes_non_mesh_topologies() {
        for topo in [Topology::ring(6), Topology::hypercube(3)] {
            let mut flows = FlowSet::new();
            let n = topo.num_nodes() as u32;
            for i in 0..n {
                flows.push(NodeId(i), NodeId((i + n / 2) % n), 10.0);
            }
            let scenario = Scenario::builder(topo, flows).vcs(2).build().expect("ok");
            let routes = scenario
                .select_routes(&BsorAlgorithm::dijkstra())
                .expect("ad-hoc exploration routes it");
            assert!(deadlock::is_deadlock_free(scenario.topology(), &routes, 2));
        }
    }

    #[test]
    fn bsor_algorithm_routes_arbitrary_graph_families_on_one_vc() {
        // The up*/down* strategy guarantees a usable CDG even at a
        // single VC, where unprotected ad-hoc breaking often strands
        // pairs.
        for topo in [
            bsor_topology::dragonfly(2, 3, 2).expect("valid"),
            bsor_topology::fat_tree(4).expect("valid"),
            bsor_topology::full_mesh(6).expect("valid"),
        ] {
            let mut flows = FlowSet::new();
            let n = topo.num_nodes() as u32;
            for i in 0..n {
                flows.push(NodeId(i), NodeId((i + n / 2) % n), 10.0);
            }
            let scenario = Scenario::builder(topo, flows).vcs(1).build().expect("ok");
            let routes = scenario
                .select_routes(&BsorAlgorithm::dijkstra())
                .expect("up*/down* exploration routes it");
            assert!(deadlock::is_deadlock_free(scenario.topology(), &routes, 1));
        }
    }

    #[test]
    fn configured_registry_applies_budgets_and_changes_cache_keys() {
        let plain = AlgorithmRegistry::standard();
        let tight = AlgorithmRegistry::standard_with(
            RegistryConfig::new().with_max_links(40).with_max_hops(2),
        );
        // Budgets are part of the selector state, so cache keys diverge
        // and a shared PlanCache cannot alias budgeted plans onto
        // unbudgeted ones.
        for name in ["bsor-dijkstra", "bsor-milp", "random-walk", "ac-oblivious"] {
            assert_ne!(
                plain.get(name).expect("registered").cache_key(),
                tight.get(name).expect("registered").cache_key(),
                "{name} cache key must fold the budget in"
            );
        }
        // Baselines carry no budget; their keys are untouched.
        assert_eq!(
            plain.get("xy").expect("registered").cache_key(),
            tight.get("xy").expect("registered").cache_key()
        );
        // A default config is exactly the standard registry.
        let default = AlgorithmRegistry::standard_with(RegistryConfig::default());
        for name in plain.names() {
            assert_eq!(
                plain.get(name).expect("registered").cache_key(),
                default.get(name).expect("registered").cache_key()
            );
        }

        // A 2-hop budget refuses the 4x4 transpose (corner flows need
        // up to 6 hops), surfacing as a typed failure through the trait.
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let scenario = Scenario::builder(topo, w.flows).vcs(2).build().expect("ok");
        let err = scenario
            .select_routes(tight.get("bsor-dijkstra").expect("registered"))
            .expect_err("2-hop budget cannot route the transpose");
        assert!(err.to_string().contains("hop"), "typed refusal: {err}");
    }

    #[test]
    fn replacing_a_name_keeps_one_entry() {
        let mut r = AlgorithmRegistry::standard();
        let before = r.names().len();
        r.register("xy", Baseline::YX);
        assert_eq!(r.names().len(), before);
    }
}
