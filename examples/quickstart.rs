//! Quickstart: compute bandwidth-sensitive deadlock-free routes for a
//! transpose workload, compare against dimension-order routing, program
//! the router tables and run a short cycle-accurate simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bsor::{BsorBuilder, SelectorKind};
use bsor_routing::selectors::DijkstraSelector;
use bsor_routing::tables::NodeTables;
use bsor_routing::{deadlock, Baseline};
use bsor_sim::{SimConfig, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::transpose;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's substrate: an 8x8 mesh with 2 virtual channels.
    let mesh = Topology::mesh2d(8, 8);
    let workload = transpose(&mesh)?;
    println!(
        "workload: {} ({} flows, {:.0} MB/s each)",
        workload.name,
        workload.flows.len(),
        workload.flows.max_demand()
    );

    // 2. BSOR: explore acyclic CDGs, keep the minimum-MCL route set.
    let result = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
        .run()?;
    println!(
        "BSOR best CDG: {} -> MCL {:.1} MB/s (explored {} CDGs)",
        result.cdg,
        result.mcl,
        result.explored.len()
    );

    // 3. Compare with XY dimension-order routing.
    let xy = Baseline::XY.select(&mesh, &workload.flows, 2)?;
    println!("XY MCL: {:.1} MB/s", xy.mcl(&mesh, &workload.flows));

    // 4. The routes are deadlock-free by construction; check anyway.
    assert!(deadlock::is_deadlock_free(&mesh, &result.routes, 2));

    // 5. Program the node-table routers (paper §4.2.1).
    let tables = NodeTables::build(&mesh, &result.routes);
    println!(
        "node tables: max {} entries/router, {} bits/entry",
        tables.max_entries(),
        tables.entry_bits()
    );

    // 6. Simulate at a moderate load.
    let traffic = TrafficSpec::proportional(&workload.flows, 1.0);
    let config = SimConfig::new(2)
        .with_warmup(2_000)
        .with_measurement(10_000);
    let report = Simulator::new(&mesh, &workload.flows, &result.routes, traffic, config)?.run();
    println!(
        "simulated: {:.3} packets/cycle delivered, mean latency {:.1} cycles",
        report.throughput(),
        report.mean_latency().unwrap_or(f64::NAN)
    );
    Ok(())
}
