//! Routing the processor performance-modeling application (paper
//! §5.2.2, Figure 5-2): a three-stage pipeline whose register-file
//! stream (62.73 MB/s) dominates, with a large worst-case/average-case
//! latency gap — the paper's motivating case for bandwidth-aware
//! routing on FPGA-hosted performance models (HAsim/FAST).
//!
//! Demonstrates the two `Evaluator` backends on one `RoutePlan`: the
//! `StaticMclEvaluator` answers "will this load fit?" analytically in
//! microseconds, and the plan's route set still feeds the load-balance
//! statistics (BSOR drops the peak-to-mean ratio versus dimension-order
//! routing).
//!
//! ```text
//! cargo run --release --example performance_modeling
//! ```

use bsor::{BsorAlgorithm, EvalPoint, Evaluator, Planner, Scenario, StaticMclEvaluator};
use bsor_lp::MilpOptions;
use bsor_routing::selectors::MilpSelector;
use bsor_routing::Baseline;
use bsor_sim::SimConfig;
use bsor_topology::Topology;
use bsor_workloads::workload_by_name;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = workload_by_name(&mesh, "perf-model")?;
    println!(
        "performance modeling: {} flows, largest {:.2} MB/s (register traffic)",
        workload.flows.len(),
        workload.flows.max_demand()
    );
    let scenario = Scenario::builder(mesh, workload.flows)
        .named("perf-model")
        .vcs(2)
        .build()?;

    let milp = MilpSelector::new()
        .with_hop_slack(4)
        .with_max_paths(60)
        .with_options(MilpOptions {
            max_nodes: 40,
            time_limit: Some(Duration::from_secs(10)),
            ..MilpOptions::default()
        });
    let planner = Planner::new();
    let bsor = planner.plan(&scenario, &BsorAlgorithm::milp("BSOR-MILP", milp))?;
    let xy = planner.plan(&scenario, &Baseline::XY)?;

    println!(
        "\n{:>14} {:>9} {:>10} {:>10} {:>12}",
        "algorithm", "MCL", "mean load", "links", "peak/mean"
    );
    for (name, plan) in [("XY", &xy), ("BSOR-MILP", &bsor)] {
        let b = plan.routes().balance(plan.topology(), plan.flows());
        println!(
            "{name:>14} {:>9.2} {:>10.2} {:>10} {:>12.2}",
            plan.predicted_mcl(),
            b.mean_load,
            b.used_links,
            b.peak_to_mean()
        );
    }

    // The analytical backend: no simulation, just the plan's static
    // channel loads scaled to an offered rate — ideal for "which loads
    // are safe?" screening before any cycle-accurate run.
    let evaluator = StaticMclEvaluator::new();
    let config = SimConfig::new(2);
    println!(
        "\n{:>8} {:>16} {:>16}",
        "rate", "XY max load", "BSOR max load"
    );
    for rate in [0.5, 1.0, 2.0] {
        let point = EvalPoint::new(rate, config.clone());
        let e_xy = evaluator.evaluate(&xy, &point)?;
        let e_bsor = evaluator.evaluate(&bsor, &point)?;
        println!(
            "{rate:>8.2} {:>11.3} f/cyc {:>11.3} f/cyc",
            e_xy.max_channel_load, e_bsor.max_channel_load
        );
    }
    println!(
        "\nBSOR found MCL {:.2} MB/s (paper's Table 6.3 row: \
         XY 95.04, BSOR-MILP 62.73 — same ordering)",
        bsor.predicted_mcl()
    );
    Ok(())
}
