//! Run-time bandwidth variation (paper §5.3, Figures 6-8 … 6-10):
//! routes are computed once from the *estimated* demands, then simulated
//! while the injection rates wander under a two-stage Markov-modulated
//! process. BSOR's headroom (lower MCL) absorbs moderate variation; at
//! 50% the paper observes minimal algorithms catching up.
//!
//! ```text
//! cargo run --release --example bandwidth_variation
//! ```

use bsor::{BsorAlgorithm, EvalPoint, Evaluator, Planner, Scenario, SimEvaluator};
use bsor_routing::Baseline;
use bsor_sim::{MarkovVariation, SimConfig};
use bsor_topology::Topology;
use bsor_workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = workload_by_name(&mesh, "transpose")?;
    let scenario = Scenario::builder(mesh, workload.flows)
        .named("bandwidth-variation")
        .vcs(2)
        .build()?;
    // Plan once per algorithm from the *estimated* demands; every
    // variation level below re-evaluates the same two plans.
    let planner = Planner::new();
    let bsor = planner.plan(&scenario, &BsorAlgorithm::dijkstra())?;
    let xy = planner.plan(&scenario, &Baseline::XY)?;
    println!(
        "routes fixed from estimates: BSOR MCL {:.0}, XY MCL {:.0} MB/s",
        bsor.predicted_mcl(),
        xy.predicted_mcl()
    );

    let evaluator = SimEvaluator::new();
    println!(
        "\n{:>10} {:>12} {:>12} {:>12} {:>12}",
        "variation", "XY tput", "BSOR tput", "XY lat", "BSOR lat"
    );
    for fraction in [0.10, 0.25, 0.50] {
        // One evaluation point per variation level; the plans stay
        // fixed while the traffic wanders.
        let point = EvalPoint::new(
            2.0,
            SimConfig::new(2)
                .with_warmup(2_000)
                .with_measurement(10_000),
        )
        .with_variation(MarkovVariation::new(fraction, 200.0));
        let r_xy = evaluator.evaluate(&xy, &point)?;
        let r_bsor = evaluator.evaluate(&bsor, &point)?;
        println!(
            "{:>9.0}% {:>12.4} {:>12.4} {:>12.1} {:>12.1}",
            fraction * 100.0,
            r_xy.throughput,
            r_bsor.throughput,
            r_xy.mean_latency.unwrap_or(f64::NAN),
            r_bsor.mean_latency.unwrap_or(f64::NAN)
        );
    }

    // The injection-rate trace the paper plots in Figure 5-4.
    let trace = MarkovVariation::new(0.25, 200.0).sample_trace(52, 1_000);
    let deviated = trace.iter().filter(|m| (**m - 1.0).abs() > 1e-9).count();
    println!(
        "\nFigure 5-4-style trace: {} of {} cycles spent off the nominal rate",
        deviated,
        trace.len()
    );
    Ok(())
}
