//! # bsor-sim
//!
//! A cycle-accurate, flit-level wormhole network-on-chip simulator
//! modelling the virtual-channel router of the paper's Chapter 4 and the
//! evaluation methodology of §6.1:
//!
//! * input-queued routers with per-virtual-channel flit buffers
//!   (16 flits/VC by default),
//! * wormhole flow control with per-packet VC allocation and per-flit
//!   switch allocation (round-robin arbiters),
//! * **table-based routing** (node-table style, paper §4.2.1): packets
//!   carry a table index that each router rewrites,
//! * **static or dynamic VC allocation** via the per-hop VC masks carried
//!   in the routing tables (paper §4.2.2),
//! * one-cycle per-hop latency (§6.1), resource↔switch interfaces at 4×
//!   the switch-to-switch bandwidth,
//! * Bernoulli packet injection scaled per flow, plus the two-stage
//!   Markov-modulated rate variation of §5.3,
//! * warmup + measurement phases (20k + 100k cycles in the paper) and a
//!   progress watchdog that detects deadlock.
//!
//! ```
//! use bsor_topology::Topology;
//! use bsor_flow::FlowSet;
//! use bsor_routing::Baseline;
//! use bsor_sim::{SimConfig, Simulator, TrafficSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = Topology::mesh2d(4, 4);
//! let mut flows = FlowSet::new();
//! flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 3).unwrap(), 25.0);
//! let routes = Baseline::XY.select(&mesh, &flows, 2)?;
//! let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
//! let traffic = TrafficSpec::proportional(&flows, 0.1);
//! let mut sim = Simulator::new(&mesh, &flows, &routes, traffic, config)?;
//! let report = sim.run();
//! assert!(report.delivered_packets > 0);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod engine;
pub mod error;
pub mod plan;
pub mod scenario;
pub mod stats;
pub mod traffic;

pub use config::{SimConfig, SimError};
pub use engine::Simulator;
pub use error::Error;
pub use plan::{
    CacheStats, EvalError, EvalPoint, Evaluation, Evaluator, InvalidateOutcome, PlanCache,
    PlanCacheConfig, PlanError, PlanId, PlanKey, PlanStats, Planner, RoutePlan, SimEvaluator,
    StaticMclEvaluator,
};
pub use scenario::{
    AlgorithmError, Experiment, ExperimentError, RouteAlgorithm, Scenario, ScenarioBuilder,
    ScenarioCtx,
};
pub use stats::{FlowStats, LatencyHistogram, RunTiming, SimReport};
pub use traffic::{
    BurstyOnOff, InjectionProcess, MarkovVariation, Phase, PhaseSchedule, TrafficSpec,
};
