//! Byte-identity goldens pinning the unified scenario/registry pipeline
//! outputs.
//!
//! The files under `tests/golden/`:
//!
//! * `sweep_smoke.json` — `bsor-sweep --quick --no-timings --threads 2`.
//!   Originally captured from the pre-refactor string-matched glue
//!   (`routes_by_name`/`workload_by_name`); re-captured when the sweep
//!   schema moved to `bsor-sweep/v2` (latency percentiles, channel
//!   load, burst/saturation knobs) after verifying field-by-field that
//!   every v1 key and value — every case, every point — was unchanged,
//!   so the underlying simulation results still match the pre-refactor
//!   engine bit-for-bit. Re-captured again when the compact-tables
//!   subsystem added the `grid.compact_tables` and per-case
//!   `table_bytes` keys, after the same structural check: stripping the
//!   two new keys from the fresh output reproduces the previous golden
//!   exactly, so every simulation number is still bit-for-bit.
//! * `fig_6_7_quick.csv` — `fig_6_7 --quick --csv`, captured from the
//!   pre-refactor per-binary plumbing.
//!
//! The pipeline must reproduce both byte-for-byte at the fixed seeds.

use bsor_bench::sweep::{run_grid, sweep_json, GridSpec};
use bsor_bench::{standard_mesh, vc_sweep_report, RunMode};

#[test]
fn sweep_smoke_json_is_byte_identical_to_pre_refactor() {
    let mut spec = GridSpec::smoke();
    spec.record_timings = false;
    let results = run_grid(&spec, 2);
    let doc = sweep_json(&spec, &results, 2, 0.0).pretty();
    assert_eq!(
        doc,
        include_str!("golden/sweep_smoke.json"),
        "registry-driven sweep diverged from the pre-refactor BENCH_sweep.json"
    );
}

#[test]
fn fig_6_7_csv_is_byte_identical_to_pre_refactor() {
    let report = vc_sweep_report(&standard_mesh(), RunMode::Quick, true);
    assert_eq!(
        report,
        include_str!("golden/fig_6_7_quick.csv"),
        "scenario-pipeline figure diverged from the pre-refactor fig_6_7 output"
    );
}
