//! Property-based tests for the simplex and branch-and-bound solvers.

use bsor_lp::{Cmp, Model, VarKind};
use proptest::prelude::*;

/// Random bounded-feasible LPs: min cᵀx over a box with `<=` rows built
/// around a known interior point so feasibility is guaranteed.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    ubs: Vec<f64>,
}

fn arbitrary_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..6, 1usize..6).prop_flat_map(|(nv, nr)| {
        (
            prop::collection::vec(-5.0..5.0f64, nv),
            prop::collection::vec(prop::collection::vec(0.0..4.0f64, nv), nr),
            prop::collection::vec(1.0..10.0f64, nv),
        )
            .prop_map(move |(costs, coeffs, ubs)| {
                // Interior point x = ubs/2 defines generous RHS values.
                let rows = coeffs
                    .into_iter()
                    .map(|row| {
                        let rhs: f64 =
                            row.iter().zip(&ubs).map(|(c, u)| c * u / 2.0).sum::<f64>() + 1.0;
                        (row, rhs)
                    })
                    .collect();
                RandomLp { costs, rows, ubs }
            })
    })
}

fn build(lp: &RandomLp, kind: VarKind) -> (Model, Vec<bsor_lp::VarId>) {
    let mut m = Model::minimize();
    let vars: Vec<_> = lp
        .costs
        .iter()
        .zip(&lp.ubs)
        .map(|(&c, &u)| m.add_var(kind, 0.0, if kind == VarKind::Binary { 1.0 } else { u }, c))
        .collect();
    for (row, rhs) in &lp.rows {
        let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &c)| (v, c)).collect();
        m.add_constraint(terms, Cmp::Le, *rhs);
    }
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solutions_are_feasible(lp in arbitrary_lp()) {
        let (m, _) = build(&lp, VarKind::Continuous);
        let sol = m.solve_relaxation().expect("constructed feasible");
        // Bounds.
        for (i, &u) in lp.ubs.iter().enumerate() {
            let x = sol.values()[i];
            prop_assert!(x >= -1e-7 && x <= u + 1e-7, "x{i} = {x} out of [0, {u}]");
        }
        // Constraints.
        for (row, rhs) in &lp.rows {
            let lhs: f64 = row.iter().zip(sol.values()).map(|(c, x)| c * x).sum();
            prop_assert!(lhs <= rhs + 1e-6, "row violated: {lhs} > {rhs}");
        }
        // Objective consistency.
        let obj: f64 = lp.costs.iter().zip(sol.values()).map(|(c, x)| c * x).sum();
        prop_assert!((obj - sol.objective()).abs() < 1e-6);
    }

    #[test]
    fn lp_objective_beats_any_box_corner(lp in arbitrary_lp()) {
        // The LP optimum must be at least as good as every *feasible*
        // corner of the box we can cheaply test.
        let (m, _) = build(&lp, VarKind::Continuous);
        let sol = m.solve_relaxation().expect("feasible");
        for corner in 0u32..(1 << lp.costs.len().min(5)) {
            let x: Vec<f64> = lp
                .ubs
                .iter()
                .enumerate()
                .map(|(i, &u)| if corner >> i & 1 == 1 { u } else { 0.0 })
                .collect();
            let feasible = lp
                .rows
                .iter()
                .all(|(row, rhs)| row.iter().zip(&x).map(|(c, xi)| c * xi).sum::<f64>() <= *rhs);
            if feasible {
                let obj: f64 = lp.costs.iter().zip(&x).map(|(c, xi)| c * xi).sum();
                prop_assert!(sol.objective() <= obj + 1e-6);
            }
        }
    }

    #[test]
    fn milp_bounded_by_lp_relaxation(lp in arbitrary_lp()) {
        let (relaxed, _) = build(&lp, VarKind::Continuous);
        // Binary version: clamp bounds to [0,1].
        let (binary, _) = build(&lp, VarKind::Binary);
        let lp_obj = relaxed.solve_relaxation().expect("feasible").objective();
        let (milp_sol, stats) = binary
            .solve_with(&bsor_lp::MilpOptions::default())
            .expect("x = 0 is always feasible here");
        // Integrality.
        for (i, x) in milp_sol.values().iter().enumerate() {
            prop_assert!((x - x.round()).abs() < 1e-6, "x{i} = {x} not integral");
        }
        // The binary optimum is bounded below by the LP relaxation over
        // the same [0,1] box (weak duality of branch-and-bound).
        let (mut clamped, clamped_vars) = build(&lp, VarKind::Continuous);
        for &v in &clamped_vars {
            clamped.set_bounds(v, 0.0, 1.0);
        }
        let clamped_obj = clamped.solve_relaxation().expect("feasible").objective();
        prop_assert!(milp_sol.objective() >= clamped_obj - 1e-6);
        prop_assert!(stats.nodes_explored >= 1);
        // And the (larger-box) LP bound cannot exceed the binary optimum
        // by construction when ubs >= 1 in every coordinate.
        if lp.ubs.iter().all(|&u| u >= 1.0) {
            prop_assert!(lp_obj <= milp_sol.objective() + 1e-6);
        }
    }
}
