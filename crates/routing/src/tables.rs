//! Table-based routing state for programmable routers (paper §4.2.1).
//!
//! Two realizations are provided, mirroring Figure 4-2:
//!
//! * [`SourceRouteTable`] — source routing: the whole hop list is
//!   prepended to each packet as routing flits.
//! * [`NodeTables`] — node-table routing: each router stores `(output
//!   port, VC mask, next index)` entries; packets carry only a table
//!   index that is rewritten at every hop.

use crate::route::{RouteSet, VcMask};
use bsor_flow::FlowId;
use bsor_topology::{LinkId, NodeId, Topology};

/// The interface the simulator's per-hop lookup needs from a routing
/// table, abstracting over the dense [`NodeTables`] arena and the
/// compressed [`crate::compact::CompactTables`] representation.
///
/// A packet carries an opaque `u32` *cursor*. What the cursor means is
/// representation-private (a chained per-node index for `NodeTables`, a
/// destination or flow key for compact tables); the contract is only
/// that starting from [`RouteTables::initial_cursor`] and following
/// each [`TableEntry::next_index`] yields the flow's hop sequence with
/// identical `(out_link, vcs)` at every hop, ending on `None` at the
/// ejection hop.
pub trait RouteTables {
    /// The cursor a packet of `flow` carries when injected.
    fn initial_cursor(&self, flow: FlowId) -> u32;

    /// Resolves the cursor at `node` into the hop's table entry (output
    /// link, VC mask, and the cursor for the next router).
    fn entry(&self, node: NodeId, cursor: u32) -> TableEntry;

    /// Measured heap footprint of the representation in bytes (arena
    /// payloads, offsets and initial cursors — the figure reported as
    /// `table_bytes` in plans, sweeps and `bsor-serve`).
    fn table_bytes(&self) -> usize;

    /// Follows the tables from a flow's source, reconstructing the hop
    /// list (used to verify table programming round-trips).
    fn walk_route(&self, topo: &Topology, flow: FlowId, src: NodeId) -> Vec<LinkId> {
        let mut hops = Vec::new();
        let mut node = src;
        let mut cursor = Some(self.initial_cursor(flow));
        while let Some(c) = cursor {
            let entry = self.entry(node, c);
            hops.push(entry.out_link);
            node = topo.link(entry.out_link).dst;
            cursor = entry.next_index;
        }
        hops
    }
}

/// Source-routing tables: one pre-computed hop list per flow.
#[derive(Clone, Debug, Default)]
pub struct SourceRouteTable {
    per_flow: Vec<Vec<LinkId>>,
}

impl SourceRouteTable {
    /// Extracts the routing-flit content for every flow in `routes`.
    pub fn build(routes: &RouteSet) -> SourceRouteTable {
        SourceRouteTable {
            per_flow: routes
                .iter()
                .map(|r| r.hops.iter().map(|h| h.link).collect())
                .collect(),
        }
    }

    /// The output-channel sequence a packet of `flow` carries.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn route_flits(&self, flow: FlowId) -> &[LinkId] {
        &self.per_flow[flow.index()]
    }

    /// Number of flows covered.
    pub fn len(&self) -> usize {
        self.per_flow.len()
    }

    /// True when no flows are covered.
    pub fn is_empty(&self) -> bool {
        self.per_flow.is_empty()
    }

    /// Routing-flit overhead: the longest hop list, in entries.
    pub fn max_route_flits(&self) -> usize {
        self.per_flow.iter().map(|p| p.len()).max().unwrap_or(0)
    }
}

/// One node-table entry: output channel, permitted VCs on it, and the
/// index the packet will carry into the next router's table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// Channel to forward on.
    pub out_link: LinkId,
    /// Virtual channels allowed on that channel.
    pub vcs: VcMask,
    /// Cursor the packet carries into the next router's table (`None`
    /// at the last hop: the packet ejects at the destination).
    pub next_index: Option<u32>,
}

/// Per-node routing tables with index chaining (paper Figure 4-2(b)).
///
/// Stored as one flat entry arena in CSR layout — node `n` owns
/// `entries[offsets[n] .. offsets[n + 1]]` — so the simulator's per-hop
/// lookup is two array reads with no nested indirection.
///
/// Equality is structural (same offsets, entries and initial indices),
/// which is what the plan-cache tests use to prove a cached
/// `RoutePlan`'s compiled tables are identical to freshly built ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeTables {
    /// CSR offsets into `entries`, one slot per node plus a sentinel.
    offsets: Vec<u32>,
    entries: Vec<TableEntry>,
    initial: Vec<u32>,
}

impl NodeTables {
    /// Programs node tables from a computed route set.
    ///
    /// # Panics
    ///
    /// Panics if any table would exceed `u32` indices (4 billion flows
    /// through one node — far beyond the paper's 256-entry discussion).
    pub fn build(topo: &Topology, routes: &RouteSet) -> NodeTables {
        // Pass 1: size each node's table so entries can live in one arena.
        let mut counts = vec![0u32; topo.num_nodes()];
        for route in routes.iter() {
            for hop in &route.hops {
                counts[topo.link(hop.link).src.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(topo.num_nodes() + 1);
        offsets.push(0u32);
        for &c in &counts {
            offsets.push(offsets.last().expect("nonempty") + c);
        }
        let placeholder = TableEntry {
            out_link: LinkId(0),
            vcs: VcMask(0),
            next_index: None,
        };
        let mut entries = vec![placeholder; *offsets.last().expect("nonempty") as usize];
        // Pass 2: fill, assigning per-node indices in route order (the
        // same order the nested-Vec representation produced).
        let mut filled = vec![0u32; topo.num_nodes()];
        let mut initial = Vec::with_capacity(routes.len());
        for route in routes.iter() {
            // Walk hops backwards so each entry knows its successor index.
            let mut next_index: Option<u32> = None;
            for hop in route.hops.iter().rev() {
                let node = topo.link(hop.link).src.index();
                let idx = filled[node];
                entries[(offsets[node] + filled[node]) as usize] = TableEntry {
                    out_link: hop.link,
                    vcs: hop.vcs,
                    next_index,
                };
                filled[node] += 1;
                next_index = Some(idx);
            }
            initial.push(next_index.expect("routes are nonempty"));
        }
        NodeTables {
            offsets,
            entries,
            initial,
        }
    }

    /// The table index a packet of `flow` carries when injected.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn initial_index(&self, flow: FlowId) -> u32 {
        self.initial[flow.index()]
    }

    /// Looks up an entry.
    ///
    /// # Panics
    ///
    /// Panics if the node or index is out of range.
    pub fn lookup(&self, node: NodeId, index: u32) -> &TableEntry {
        let n = node.index();
        let slot = self.offsets[n] as usize + index as usize;
        debug_assert!(slot < self.offsets[n + 1] as usize, "index past node table");
        &self.entries[slot]
    }

    /// Size of the largest node table (the hardware-resource figure the
    /// paper discusses: 256 entries ≈ a couple of KB).
    pub fn max_entries(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Bits per entry for this network: 2 bits of output port on a 2-D
    /// mesh (up to 4 candidate ports), plus index bits for the largest
    /// table.
    pub fn entry_bits(&self) -> u32 {
        let idx_bits = (self.max_entries().max(2) as f64).log2().ceil() as u32;
        2 + idx_bits
    }

    /// Follows the tables from a flow's source, reconstructing the hop
    /// list (used to verify table programming round-trips).
    pub fn walk(&self, topo: &Topology, flow: FlowId, src: NodeId) -> Vec<LinkId> {
        let mut hops = Vec::new();
        let mut node = src;
        let mut index = Some(self.initial_index(flow));
        while let Some(idx) = index {
            let entry = self.lookup(node, idx);
            hops.push(entry.out_link);
            node = topo.link(entry.out_link).dst;
            index = entry.next_index;
        }
        hops
    }
}

impl RouteTables for NodeTables {
    fn initial_cursor(&self, flow: FlowId) -> u32 {
        self.initial_index(flow)
    }

    fn entry(&self, node: NodeId, cursor: u32) -> TableEntry {
        *self.lookup(node, cursor)
    }

    fn table_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<TableEntry>()
            + self.initial.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Baseline;
    use bsor_flow::FlowSet;

    fn sample() -> (Topology, FlowSet, RouteSet) {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        for s in topo.node_ids() {
            for d in topo.node_ids() {
                if s != d && (s.0 + d.0) % 3 == 0 {
                    flows.push(s, d, 10.0);
                }
            }
        }
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        (topo, flows, routes)
    }

    #[test]
    fn source_table_matches_routes() {
        let (_topo, flows, routes) = sample();
        let table = SourceRouteTable::build(&routes);
        assert_eq!(table.len(), flows.len());
        for f in flows.iter() {
            let flits = table.route_flits(f.id);
            let hops: Vec<LinkId> = routes.route(f.id).hops.iter().map(|h| h.link).collect();
            assert_eq!(flits, hops.as_slice());
        }
        assert!(table.max_route_flits() >= 1);
    }

    #[test]
    fn node_tables_walk_reproduces_routes() {
        let (topo, flows, routes) = sample();
        let tables = NodeTables::build(&topo, &routes);
        for f in flows.iter() {
            let walked = tables.walk(&topo, f.id, f.src);
            let expected: Vec<LinkId> = routes.route(f.id).hops.iter().map(|h| h.link).collect();
            assert_eq!(walked, expected, "table walk must reproduce flow {}", f.id);
        }
    }

    #[test]
    fn node_table_sizes_are_modest() {
        let (_, _, routes) = sample();
        let topo = Topology::mesh2d(4, 4);
        let tables = NodeTables::build(&topo, &routes);
        // Every route of length L contributes L entries spread over L nodes.
        let total_entries: usize = routes.iter().map(|r| r.len()).sum();
        assert!(tables.max_entries() <= total_entries);
        assert!(tables.max_entries() > 0);
        // Paper: 2 bits out-port + 8 bits index for 256 entries.
        assert!(tables.entry_bits() >= 3);
    }

    #[test]
    fn last_hop_has_no_next_index() {
        let (topo, flows, routes) = sample();
        let tables = NodeTables::build(&topo, &routes);
        for f in flows.iter() {
            let mut node = f.src;
            let mut index = Some(tables.initial_index(f.id));
            let mut last_entry = None;
            while let Some(idx) = index {
                let e = tables.lookup(node, idx);
                node = topo.link(e.out_link).dst;
                index = e.next_index;
                last_entry = Some(*e);
            }
            assert_eq!(last_entry.expect("route nonempty").next_index, None);
            assert_eq!(node, f.dst);
        }
    }
}
