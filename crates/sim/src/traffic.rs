//! Packet injection processes: proportional Bernoulli traffic, the
//! two-stage Markov-modulated bandwidth variation of paper §5.3, on/off
//! bursty injection with geometric dwell times, and multi-phase rate
//! schedules that switch offered load at cycle boundaries.

use bsor_flow::FlowSet;
use rand::rngs::StdRng;
use rand::Rng;

/// Two-stage Markov-modulated rate variation (paper §5.3): each flow's
/// rate multiplier alternates between a *steady* stage (multiplier 1) and
/// a *deviated* stage (multiplier drawn uniformly from `1 ± fraction`);
/// each stage lasts a geometrically distributed number of cycles.
#[derive(Clone, Copy, Debug)]
pub struct MarkovVariation {
    /// Maximum relative deviation (0.10, 0.25 or 0.50 in the paper).
    pub fraction: f64,
    /// Mean dwell time in each stage, in cycles.
    pub mean_dwell: f64,
}

impl MarkovVariation {
    /// A variation process with the paper's percentages.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and `mean_dwell >= 1`.
    pub fn new(fraction: f64, mean_dwell: f64) -> MarkovVariation {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        assert!(mean_dwell >= 1.0, "dwell time must be at least a cycle");
        MarkovVariation {
            fraction,
            mean_dwell,
        }
    }

    /// Samples `cycles` consecutive rate multipliers of one flow's
    /// modulation process — the trace plotted in the paper's Figure 5-4
    /// ("Transpose Node 52 Injection Rates when modeling burstiness").
    pub fn sample_trace(&self, seed: u64, cycles: usize) -> Vec<f64> {
        use rand::SeedableRng;
        let mut state = VariationState::new();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cycles).map(|_| state.step(self, &mut rng)).collect()
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VariationState {
    multiplier: f64,
    cycles_left: u64,
    deviated: bool,
}

impl VariationState {
    pub(crate) fn new() -> VariationState {
        VariationState {
            multiplier: 1.0,
            cycles_left: 0,
            deviated: true, // first toggle enters the steady stage
        }
    }

    /// Advances one cycle, returning the current rate multiplier.
    pub(crate) fn step(&mut self, params: &MarkovVariation, rng: &mut StdRng) -> f64 {
        if self.cycles_left == 0 {
            self.deviated = !self.deviated;
            // Geometric dwell with the configured mean (at least 1).
            let p = 1.0 / params.mean_dwell;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            self.cycles_left = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
            self.multiplier = if self.deviated {
                1.0 + rng.gen_range(-params.fraction..=params.fraction)
            } else {
                1.0
            };
        }
        self.cycles_left -= 1;
        self.multiplier
    }
}

/// On/off bursty injection: each flow alternates between an *on* stage
/// (injecting at `rate / duty`, preserving the configured mean rate) and
/// an *off* stage (silent); each stage lasts a geometrically distributed
/// number of cycles. The long-run offered load matches the flat
/// Bernoulli process with the same base rates — only the arrival
/// clustering changes, which is exactly what stresses buffer depth and
/// VC allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstyOnOff {
    /// Mean dwell time of the injecting stage, cycles.
    pub mean_on: f64,
    /// Mean dwell time of the silent stage, cycles.
    pub mean_off: f64,
}

impl BurstyOnOff {
    /// A bursty process with the given mean dwell times.
    ///
    /// # Panics
    ///
    /// Panics unless both means are at least one cycle.
    pub fn new(mean_on: f64, mean_off: f64) -> BurstyOnOff {
        assert!(
            mean_on >= 1.0 && mean_off >= 1.0,
            "dwell times must be at least a cycle"
        );
        BurstyOnOff { mean_on, mean_off }
    }

    /// Fraction of cycles spent in the on stage.
    pub fn duty(&self) -> f64 {
        self.mean_on / (self.mean_on + self.mean_off)
    }

    /// Rate multiplier applied while on (1/duty), so the long-run mean
    /// offered load equals the base rate.
    pub fn on_multiplier(&self) -> f64 {
        1.0 / self.duty()
    }
}

/// Per-flow on/off stage tracker (mirrors [`VariationState`]).
#[derive(Clone, Debug)]
pub(crate) struct BurstState {
    on: bool,
    cycles_left: u64,
}

impl BurstState {
    pub(crate) fn new() -> BurstState {
        BurstState {
            on: false, // first toggle enters the on stage
            cycles_left: 0,
        }
    }

    /// Advances one cycle, returning whether the flow is injecting.
    pub(crate) fn step(&mut self, params: &BurstyOnOff, rng: &mut StdRng) -> bool {
        if self.cycles_left == 0 {
            self.on = !self.on;
            let mean = if self.on {
                params.mean_on
            } else {
                params.mean_off
            };
            let p = 1.0 / mean;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            self.cycles_left = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
        }
        self.cycles_left -= 1;
        self.on
    }
}

/// One stage of a [`PhaseSchedule`]: hold the workload's rates at
/// `scale ×` their base values for `cycles` cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// Stage length in cycles (≥ 1).
    pub cycles: u64,
    /// Rate multiplier applied to every flow during the stage.
    pub scale: f64,
}

/// A multi-phase injection schedule: the per-flow rates are scaled by
/// each phase's multiplier in turn, switching exactly at cycle
/// boundaries, and the schedule repeats once exhausted. Cycle 0 of the
/// simulation (warmup included) is cycle 0 of the first phase, so a
/// report's measurement window covers a deterministic slice of the
/// schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSchedule {
    phases: Vec<Phase>,
    total: u64,
}

impl PhaseSchedule {
    /// Builds a schedule from its phases.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is empty, any phase is zero-length, or any
    /// scale is negative or non-finite.
    pub fn new(phases: Vec<Phase>) -> PhaseSchedule {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        for p in &phases {
            assert!(p.cycles >= 1, "phases must last at least a cycle");
            assert!(
                p.scale.is_finite() && p.scale >= 0.0,
                "phase scale must be finite and non-negative"
            );
        }
        let total = phases.iter().map(|p| p.cycles).sum();
        PhaseSchedule { phases, total }
    }

    /// Convenience constructor from `(cycles, scale)` pairs.
    ///
    /// # Panics
    ///
    /// As [`PhaseSchedule::new`].
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, f64)>) -> PhaseSchedule {
        PhaseSchedule::new(
            pairs
                .into_iter()
                .map(|(cycles, scale)| Phase { cycles, scale })
                .collect(),
        )
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Cycles in one full pass of the schedule.
    pub fn period(&self) -> u64 {
        self.total
    }

    /// The rate multiplier in force at `cycle` (the schedule repeats).
    pub fn scale_at(&self, cycle: u64) -> f64 {
        let mut t = cycle % self.total;
        for p in &self.phases {
            if t < p.cycles {
                return p.scale;
            }
            t -= p.cycles;
        }
        unreachable!("cycle {t} beyond schedule period {}", self.total)
    }
}

/// Which arrival process generates packets from the per-flow rates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum InjectionProcess {
    /// Independent Bernoulli arrivals each cycle (the paper's §6.1
    /// methodology and the historical default).
    #[default]
    Bernoulli,
    /// On/off bursty arrivals with geometric stage dwell times.
    OnOff(BurstyOnOff),
}

/// Per-flow injection rates in packets/cycle, with optional run-time
/// variation, burstiness and phase scheduling.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Base injection rate of each flow, packets/cycle, indexed by flow.
    pub rates: Vec<f64>,
    /// Optional Markov-modulated variation applied multiplicatively.
    pub variation: Option<MarkovVariation>,
    /// The arrival process mapping rates to packet generation events.
    pub injection: InjectionProcess,
    /// Optional multi-phase rate schedule (cycle-boundary switching).
    pub phases: Option<PhaseSchedule>,
}

impl TrafficSpec {
    /// Splits a total offered rate (packets/cycle across the whole
    /// network) over the flows proportionally to their bandwidth demands —
    /// how the evaluation sweeps load while keeping the application's
    /// traffic mix.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is negative or the flow set is empty.
    pub fn proportional(flows: &FlowSet, total_rate: f64) -> TrafficSpec {
        assert!(total_rate >= 0.0, "offered rate must be non-negative");
        assert!(!flows.is_empty(), "traffic needs at least one flow");
        let total_demand = flows.total_demand();
        TrafficSpec {
            rates: flows
                .iter()
                .map(|f| total_rate * f.demand / total_demand)
                .collect(),
            variation: None,
            injection: InjectionProcess::Bernoulli,
            phases: None,
        }
    }

    /// Uniform per-flow rate (packets/cycle each).
    pub fn uniform(flows: &FlowSet, rate_per_flow: f64) -> TrafficSpec {
        assert!(rate_per_flow >= 0.0, "rate must be non-negative");
        TrafficSpec {
            rates: vec![rate_per_flow; flows.len()],
            variation: None,
            injection: InjectionProcess::Bernoulli,
            phases: None,
        }
    }

    /// Adds Markov-modulated bandwidth variation.
    #[must_use]
    pub fn with_variation(mut self, variation: MarkovVariation) -> Self {
        self.variation = Some(variation);
        self
    }

    /// Switches the arrival process to on/off bursty injection.
    #[must_use]
    pub fn with_burst(mut self, burst: BurstyOnOff) -> Self {
        self.injection = InjectionProcess::OnOff(burst);
        self
    }

    /// Adds a multi-phase rate schedule.
    #[must_use]
    pub fn with_phases(mut self, phases: PhaseSchedule) -> Self {
        self.phases = Some(phases);
        self
    }

    /// Total offered rate in packets/cycle (base rates, before phase
    /// scaling).
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_topology::NodeId;
    use rand::SeedableRng;

    fn flows() -> FlowSet {
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), 30.0);
        fs.push(NodeId(1), NodeId(2), 10.0);
        fs
    }

    #[test]
    fn proportional_split() {
        let spec = TrafficSpec::proportional(&flows(), 0.4);
        assert!((spec.rates[0] - 0.3).abs() < 1e-12);
        assert!((spec.rates[1] - 0.1).abs() < 1e-12);
        assert!((spec.total_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn uniform_split() {
        let spec = TrafficSpec::uniform(&flows(), 0.05);
        assert_eq!(spec.rates, vec![0.05, 0.05]);
    }

    #[test]
    fn variation_multiplier_stays_in_band() {
        let params = MarkovVariation::new(0.25, 50.0);
        let mut state = VariationState::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_deviation = false;
        for _ in 0..10_000 {
            let m = state.step(&params, &mut rng);
            assert!(
                (0.75..=1.25).contains(&m),
                "multiplier {m} escaped the 25% band"
            );
            if (m - 1.0).abs() > 1e-9 {
                saw_deviation = true;
            }
        }
        assert!(saw_deviation, "the deviated stage must occur");
    }

    #[test]
    fn variation_dwell_times_hold_rates_constant() {
        // Paper: "each rate is kept constant for a random number of
        // cycles" — multipliers change rarely relative to cycles.
        let params = MarkovVariation::new(0.5, 100.0);
        let mut state = VariationState::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut changes = 0;
        let mut last = f64::NAN;
        for _ in 0..10_000 {
            let m = state.step(&params, &mut rng);
            if (m - last).abs() > 1e-12 {
                changes += 1;
            }
            last = m;
        }
        assert!(
            changes < 400,
            "multiplier changed {changes} times in 10k cycles"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn variation_rejects_out_of_band_fraction() {
        MarkovVariation::new(1.5, 10.0);
    }

    #[test]
    fn burst_duty_cycle_matches_dwell_means() {
        let params = BurstyOnOff::new(40.0, 60.0);
        assert!((params.duty() - 0.4).abs() < 1e-12);
        assert!((params.on_multiplier() - 2.5).abs() < 1e-12);
        let mut state = BurstState::new();
        let mut rng = StdRng::seed_from_u64(3);
        let on_cycles = (0..200_000)
            .filter(|_| state.step(&params, &mut rng))
            .count();
        let duty = on_cycles as f64 / 200_000.0;
        assert!(
            (0.35..0.45).contains(&duty),
            "observed duty {duty} far from 0.4"
        );
    }

    #[test]
    fn burst_stages_dwell_for_whole_stretches() {
        let params = BurstyOnOff::new(50.0, 50.0);
        let mut state = BurstState::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut toggles = 0;
        let mut last = None;
        for _ in 0..10_000 {
            let on = state.step(&params, &mut rng);
            if last != Some(on) {
                toggles += 1;
            }
            last = Some(on);
        }
        assert!(toggles < 400, "toggled {toggles} times in 10k cycles");
    }

    #[test]
    #[should_panic(expected = "dwell")]
    fn burst_rejects_sub_cycle_dwell() {
        BurstyOnOff::new(0.5, 10.0);
    }

    #[test]
    fn phase_schedule_switches_at_cycle_boundaries_and_repeats() {
        let sched = PhaseSchedule::from_pairs([(100, 1.0), (50, 0.0), (25, 2.5)]);
        assert_eq!(sched.period(), 175);
        assert_eq!(sched.phases().len(), 3);
        assert_eq!(sched.scale_at(0), 1.0);
        assert_eq!(sched.scale_at(99), 1.0);
        assert_eq!(sched.scale_at(100), 0.0);
        assert_eq!(sched.scale_at(149), 0.0);
        assert_eq!(sched.scale_at(150), 2.5);
        assert_eq!(sched.scale_at(174), 2.5);
        // Wraps around.
        assert_eq!(sched.scale_at(175), 1.0);
        assert_eq!(sched.scale_at(175 + 160), 2.5);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn phase_schedule_rejects_empty() {
        PhaseSchedule::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least a cycle")]
    fn phase_schedule_rejects_zero_length_phase() {
        PhaseSchedule::from_pairs([(0, 1.0)]);
    }

    #[test]
    fn traffic_spec_builders_compose() {
        let spec = TrafficSpec::proportional(&flows(), 0.4)
            .with_burst(BurstyOnOff::new(20.0, 80.0))
            .with_phases(PhaseSchedule::from_pairs([(10, 1.0), (10, 0.5)]));
        assert_eq!(
            spec.injection,
            InjectionProcess::OnOff(BurstyOnOff::new(20.0, 80.0))
        );
        assert_eq!(spec.phases.as_ref().map(PhaseSchedule::period), Some(20));
        assert!((spec.total_rate() - 0.4).abs() < 1e-12);
    }
}
