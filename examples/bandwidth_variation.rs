//! Run-time bandwidth variation (paper §5.3, Figures 6-8 … 6-10):
//! routes are computed once from the *estimated* demands, then simulated
//! while the injection rates wander under a two-stage Markov-modulated
//! process. BSOR's headroom (lower MCL) absorbs moderate variation; at
//! 50% the paper observes minimal algorithms catching up.
//!
//! ```text
//! cargo run --release --example bandwidth_variation
//! ```

use bsor::BsorBuilder;
use bsor_routing::Baseline;
use bsor_sim::{MarkovVariation, SimConfig, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::transpose;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = transpose(&mesh)?;
    let bsor = BsorBuilder::new(&mesh, &workload.flows).vcs(2).run()?;
    let xy = Baseline::XY.select(&mesh, &workload.flows, 2)?;
    println!(
        "routes fixed from estimates: BSOR MCL {:.0}, XY MCL {:.0} MB/s",
        bsor.mcl,
        xy.mcl(&mesh, &workload.flows)
    );

    println!(
        "\n{:>10} {:>12} {:>12} {:>12} {:>12}",
        "variation", "XY tput", "BSOR tput", "XY lat", "BSOR lat"
    );
    for fraction in [0.10, 0.25, 0.50] {
        let run = |routes| -> Result<_, Box<dyn std::error::Error>> {
            let traffic = TrafficSpec::proportional(&workload.flows, 2.0)
                .with_variation(MarkovVariation::new(fraction, 200.0));
            let config = SimConfig::new(2)
                .with_warmup(2_000)
                .with_measurement(10_000);
            let report = Simulator::new(&mesh, &workload.flows, routes, traffic, config)?.run();
            Ok((
                report.throughput(),
                report.mean_latency().unwrap_or(f64::NAN),
            ))
        };
        let (t_xy, l_xy) = run(&xy)?;
        let (t_bsor, l_bsor) = run(&bsor.routes)?;
        println!(
            "{:>9.0}% {:>12.4} {:>12.4} {:>12.1} {:>12.1}",
            fraction * 100.0,
            t_xy,
            t_bsor,
            l_xy,
            l_bsor
        );
    }

    // The injection-rate trace the paper plots in Figure 5-4.
    let trace = MarkovVariation::new(0.25, 200.0).sample_trace(52, 1_000);
    let deviated = trace.iter().filter(|m| (**m - 1.0).abs() > 1e-9).count();
    println!(
        "\nFigure 5-4-style trace: {} of {} cycles spent off the nominal rate",
        deviated,
        trace.len()
    );
    Ok(())
}
