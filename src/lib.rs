//! Workspace root crate for the BSOR reproduction.
//!
//! This crate exists to host the repository-level `examples/` and the
//! cross-crate integration tests in `tests/`. It re-exports the member
//! crates under stable names so examples and tests can use a single
//! dependency.

pub use bsor;
pub use bsor_cdg as cdg;
pub use bsor_flow as flow;
pub use bsor_lp as lp;
pub use bsor_netgraph as netgraph;
pub use bsor_routing as routing;
pub use bsor_sim as sim;
pub use bsor_topology as topology;
pub use bsor_workloads as workloads;
