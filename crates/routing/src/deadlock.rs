//! Deadlock-freedom checking for computed route sets.
//!
//! Per the paper's Lemma 1 (Dally & Aoki), a routing is deadlock-free iff
//! the channel dependence graph restricted to the dependencies its routes
//! actually create is acyclic. This module rebuilds that restricted CDG
//! from a [`RouteSet`] — conservatively expanding each hop's VC mask — and
//! checks acyclicity.

use crate::route::RouteSet;
use bsor_netgraph::{algo, DiGraph};
use bsor_topology::Topology;

/// Result of a deadlock analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeadlockAnalysis {
    /// The induced channel dependence graph is acyclic.
    Free,
    /// A dependence cycle exists; the offending `(link, vc)` pairs are
    /// listed in cycle order.
    Cyclic {
        /// `(link index, vc)` pairs forming the cycle.
        cycle: Vec<(usize, u8)>,
    },
}

impl DeadlockAnalysis {
    /// True when no cycle was found.
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockAnalysis::Free)
    }
}

/// Builds the `(channel, VC)` dependence graph `routes` induce (the
/// restricted CDG of Lemma 1), deduplicating edges.
fn induced_graph(topo: &Topology, routes: &RouteSet, vcs: u8) -> DiGraph<(usize, u8), ()> {
    let nl = topo.num_links();
    let nv = vcs as usize;
    let mut g: DiGraph<(usize, u8), ()> = DiGraph::with_capacity(nl * nv, nl * nv);
    for l in 0..nl {
        for v in 0..vcs {
            g.add_node((l, v));
        }
    }
    let vid = |l: usize, v: u8| bsor_netgraph::NodeId((l * nv + v as usize) as u32);
    // Dedup edges with a seen set to keep the graph small.
    let mut seen = std::collections::HashSet::new();
    for r in routes.iter() {
        for pair in r.hops.windows(2) {
            for v1 in pair[0].vcs.iter() {
                for v2 in pair[1].vcs.iter() {
                    let key = (pair[0].link.index(), v1, pair[1].link.index(), v2);
                    if seen.insert(key) {
                        g.add_edge(vid(key.0, key.1), vid(key.2, key.3), ());
                    }
                }
            }
        }
    }
    g
}

/// Builds the `(channel, VC)` dependence graph induced by `routes` and
/// reports whether it is acyclic.
///
/// Every consecutive hop pair `(h1, h2)` of every route contributes the
/// dependence edges `{(h1.link, v1) -> (h2.link, v2) | v1 ∈ h1.vcs, v2 ∈
/// h2.vcs}`. This is conservative for dynamically allocated VCs: if the
/// expanded graph is acyclic, the routing is deadlock-free under any
/// run-time VC choice within the masks.
pub fn analyze(topo: &Topology, routes: &RouteSet, vcs: u8) -> DeadlockAnalysis {
    let g = induced_graph(topo, routes, vcs);
    match algo::find_cycle(&g) {
        None => DeadlockAnalysis::Free,
        Some(cycle_edges) => {
            let cycle = cycle_edges
                .iter()
                .map(|&e| {
                    let (s, _) = g.endpoints(e).expect("live edge");
                    *g.node(s)
                })
                .collect();
            DeadlockAnalysis::Cyclic { cycle }
        }
    }
}

/// A checkable witness of Lemma-1 deadlock freedom.
///
/// The certificate carries a topological rank for every `(channel, VC)`
/// vertex of the dependence graph the routes induce; acyclicity follows
/// from every dependence strictly increasing the rank, which
/// [`DeadlockCertificate::verify`] re-checks in one pass over the routes
/// without rebuilding or re-sorting the graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockCertificate {
    vcs: u8,
    /// `rank[link * vcs + vc]` — position in a topological order of the
    /// induced CDG.
    rank: Vec<u32>,
    dependencies: usize,
}

impl DeadlockCertificate {
    /// Virtual channels the certified routing runs on.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// Number of distinct channel dependencies the routes induce.
    pub fn dependencies(&self) -> usize {
        self.dependencies
    }

    /// Re-checks the witness against `routes`: every dependence edge the
    /// routes create must strictly increase the stored topological rank
    /// (and every hop must stay inside the certified VC range).
    pub fn verify(&self, routes: &RouteSet) -> bool {
        let nv = self.vcs as usize;
        let rank = |l: usize, v: u8| self.rank.get(l * nv + v as usize);
        for r in routes.iter() {
            for hop in &r.hops {
                if hop.vcs.iter().any(|v| v >= self.vcs) {
                    return false;
                }
            }
            for pair in r.hops.windows(2) {
                for v1 in pair[0].vcs.iter() {
                    for v2 in pair[1].vcs.iter() {
                        match (
                            rank(pair[0].link.index(), v1),
                            rank(pair[1].link.index(), v2),
                        ) {
                            (Some(a), Some(b)) if a < b => {}
                            _ => return false,
                        }
                    }
                }
            }
        }
        true
    }
}

/// Proves `routes` deadlock-free (paper Lemma 1) by topologically
/// sorting the induced channel dependence graph, returning the order as
/// a reusable [`DeadlockCertificate`].
///
/// # Errors
///
/// The dependence cycle (as `(link index, vc)` pairs in cycle order)
/// when the routing is *not* deadlock-free — the same evidence
/// [`analyze`] reports.
pub fn certify(
    topo: &Topology,
    routes: &RouteSet,
    vcs: u8,
) -> Result<DeadlockCertificate, Vec<(usize, u8)>> {
    let g = induced_graph(topo, routes, vcs);
    match algo::toposort(&g) {
        Ok(order) => {
            let mut rank = vec![0u32; topo.num_links() * vcs as usize];
            for (pos, node) in order.iter().enumerate() {
                let (l, v) = *g.node(*node);
                rank[l * vcs as usize + v as usize] = pos as u32;
            }
            Ok(DeadlockCertificate {
                vcs,
                rank,
                dependencies: g.edge_count(),
            })
        }
        Err(_) => match analyze(topo, routes, vcs) {
            DeadlockAnalysis::Cyclic { cycle } => Err(cycle),
            DeadlockAnalysis::Free => unreachable!("toposort found a cycle analyze did not"),
        },
    }
}

/// Convenience wrapper over [`analyze`].
pub fn is_deadlock_free(topo: &Topology, routes: &RouteSet, vcs: u8) -> bool {
    analyze(topo, routes, vcs).is_free()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Route, RouteHop, RouteSet, VcMask};
    use bsor_flow::FlowId;
    use bsor_topology::NodeId;

    fn hop(topo: &Topology, a: NodeId, b: NodeId, vcs: VcMask) -> RouteHop {
        RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs,
        }
    }

    #[test]
    fn empty_routing_is_free() {
        let topo = Topology::mesh2d(3, 3);
        let routes = RouteSet::from_routes(vec![]);
        assert!(is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn four_route_ring_deadlocks_on_one_vc() {
        // The canonical wormhole deadlock: four routes turning around a
        // 2x2 square, each holding one channel and wanting the next.
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let m = VcMask::all(1);
        // Clockwise: (0,0)->(0,1)->(1,1), (0,1)->(1,1)->(1,0), etc.
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(&topo, n(0, 0), n(0, 1), m),
                    hop(&topo, n(0, 1), n(1, 1), m),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(&topo, n(0, 1), n(1, 1), m),
                    hop(&topo, n(1, 1), n(1, 0), m),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(&topo, n(1, 1), n(1, 0), m),
                    hop(&topo, n(1, 0), n(0, 0), m),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(&topo, n(1, 0), n(0, 0), m),
                    hop(&topo, n(0, 0), n(0, 1), m),
                ],
            },
        ]);
        let analysis = analyze(&topo, &routes, 1);
        match analysis {
            DeadlockAnalysis::Cyclic { ref cycle } => assert_eq!(cycle.len(), 4),
            DeadlockAnalysis::Free => panic!("expected a dependence cycle"),
        }
    }

    #[test]
    fn vc_split_breaks_the_ring() {
        // Same four turning routes, but two of them moved to VC 1:
        // the dependence cycle cannot close across disjoint VC layers
        // when the turn sequence differs... here we give each route a
        // dedicated VC assignment that breaks the cycle.
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let v0 = VcMask::single(0);
        let v1 = VcMask::single(1);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(&topo, n(0, 0), n(0, 1), v0),
                    hop(&topo, n(0, 1), n(1, 1), v0),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(&topo, n(0, 1), n(1, 1), v1),
                    hop(&topo, n(1, 1), n(1, 0), v0),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(&topo, n(1, 1), n(1, 0), v1),
                    hop(&topo, n(1, 0), n(0, 0), v0),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(&topo, n(1, 0), n(0, 0), v1),
                    hop(&topo, n(0, 0), n(0, 1), v1),
                ],
            },
        ]);
        assert!(is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn straight_routes_are_free() {
        let topo = Topology::mesh2d(4, 1);
        let m = VcMask::all(2);
        let n = NodeId;
        let routes = RouteSet::from_routes(vec![Route {
            flow: FlowId(0),
            hops: vec![
                hop(&topo, n(0), n(1), m),
                hop(&topo, n(1), n(2), m),
                hop(&topo, n(2), n(3), m),
            ],
        }]);
        assert!(is_deadlock_free(&topo, &routes, 2));
    }
}
