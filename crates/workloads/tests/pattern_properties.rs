//! Property tests for the adversarial pattern generators: permutation
//! patterns are bijections, hotspot demand normalization holds for every
//! `k`, and seeded patterns are seed-deterministic — across grid sizes.

use bsor_topology::Topology;
use bsor_workloads::{
    bit_reversal, hotspot, hotspot_nodes, neighbor, rand_perm, tornado, uniform_random, Workload,
    WorkloadRegistry, SYNTHETIC_DEMAND,
};
use proptest::prelude::*;

/// Asserts that the flow map `src -> dst` is injective (and therefore,
/// with fixed points removed, a bijection on its support).
fn assert_permutation(w: &Workload) -> Result<(), TestCaseError> {
    let mut srcs: Vec<u32> = w.flows.iter().map(|f| f.src.0).collect();
    let mut dsts: Vec<u32> = w.flows.iter().map(|f| f.dst.0).collect();
    srcs.sort_unstable();
    dsts.sort_unstable();
    let n = srcs.len();
    srcs.dedup();
    dsts.dedup();
    prop_assert_eq!(srcs.len(), n, "{} repeats a source", w.name);
    prop_assert_eq!(dsts.len(), n, "{} repeats a destination", w.name);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn permutation_patterns_are_bijections(side_pow in 1u32..=3, seed in 0u64..1_000) {
        let side = 1u16 << side_pow; // 2, 4, 8 — square power-of-two grids
        let topo = Topology::mesh2d(side, side);
        if let Ok(w) = tornado(&topo) {
            assert_permutation(&w)?;
        }
        assert_permutation(&bit_reversal(&topo).expect("square power of two"))?;
        assert_permutation(&neighbor(&topo).expect("side >= 2"))?;
        assert_permutation(&rand_perm(&topo, seed).expect("nontrivial"))?;
    }

    #[test]
    fn hotspot_weights_sum_correctly(w in 2u16..=8, h in 2u16..=8, k_raw in 1usize..16) {
        let topo = Topology::mesh2d(w, h);
        let n = topo.num_nodes();
        let k = 1 + k_raw % (n - 1); // 1 <= k < n
        let workload = hotspot(&topo, k).expect("k in range");
        let spots = hotspot_nodes(&topo, k);
        prop_assert_eq!(spots.len(), k);
        let per_spot = SYNTHETIC_DEMAND / k as f64;
        for s in topo.node_ids() {
            let out: f64 = workload
                .flows
                .iter()
                .filter(|f| f.src == s)
                .map(|f| f.demand)
                .sum();
            let expected = if spots.contains(&s) {
                per_spot * (k - 1) as f64
            } else {
                SYNTHETIC_DEMAND
            };
            prop_assert!(
                (out - expected).abs() < 1e-9,
                "src {:?} emits {} not {} (k={})", s, out, expected, k
            );
        }
        // Every hotspot receives the same aggregate demand.
        for &spot in &spots {
            let inbound: f64 = workload
                .flows
                .iter()
                .filter(|f| f.dst == spot)
                .map(|f| f.demand)
                .sum();
            prop_assert!(((n - 1) as f64 * per_spot - inbound).abs() < 1e-9);
        }
    }

    #[test]
    fn rand_perm_is_seed_deterministic(w in 2u16..=8, h in 2u16..=8, seed in 0u64..10_000) {
        let topo = Topology::mesh2d(w, h);
        let a = rand_perm(&topo, seed).expect("nontrivial");
        let b = rand_perm(&topo, seed).expect("nontrivial");
        prop_assert_eq!(&a.flows, &b.flows);
        let registry = WorkloadRegistry::standard();
        let via_spec = registry
            .build(&topo, &format!("rand-perm:{seed}"))
            .expect("spec resolves");
        prop_assert_eq!(&a.flows, &via_spec.flows);
    }

    #[test]
    fn uniform_random_demand_is_normalized(w in 2u16..=6, h in 2u16..=6) {
        let topo = Topology::mesh2d(w, h);
        let workload = uniform_random(&topo).expect("n >= 2");
        let n = topo.num_nodes();
        prop_assert_eq!(workload.flows.len(), n * (n - 1));
        let total = workload.flows.total_demand();
        prop_assert!((total - SYNTHETIC_DEMAND * n as f64).abs() < 1e-6);
    }
}
